package minic

import (
	"strings"
	"testing"
)

// TestBitwiseOperators exercises the integer bit operations.
func TestBitwiseOperators(t *testing.T) {
	src := `int main(void) {
	int a, b;
	a = 12;       // 0b1100
	b = 10;       // 0b1010
	return ((a & b) << 8) | ((a | b) << 4) | (a ^ b);
}`
	_, _, v := run(t, src, nil)
	want := int64(8<<8 | 14<<4 | 6)
	if v != want {
		t.Errorf("got %d, want %d", v, want)
	}
}

func TestShiftAndNegation(t *testing.T) {
	src := `int main(void) {
	int x;
	x = 1 << 10;      // 1024
	x = x >> 3;       // 128
	return ~x + 1;    // -x = -128 → two's complement identity
}`
	_, _, v := run(t, src, nil)
	if v != -128 {
		t.Errorf("got %d", v)
	}
}

func TestPointerComparisons(t *testing.T) {
	src := `int main(void) {
	int a[4];
	int *p, *q;
	p = a;
	q = a + 2;
	if (p < q && q > p && p != q && p <= q && q >= p) {
		if (p == a) return q - p;  // pointer difference in elements
	}
	return -1;
}`
	_, _, v := run(t, src, nil)
	if v != 2 {
		t.Errorf("pointer arithmetic/comparison: got %d, want 2", v)
	}
}

func TestPointerMinusInt(t *testing.T) {
	src := `int main(void) {
	int a[4];
	int *p;
	a[1] = 42;
	p = a + 3;
	p = p - 2;
	return *p;
}`
	_, _, v := run(t, src, nil)
	if v != 42 {
		t.Errorf("got %d", v)
	}
}

func TestIntPlusPointer(t *testing.T) {
	src := `int main(void) {
	int a[4];
	a[3] = 9;
	return *(3 + a);
}`
	_, _, v := run(t, src, nil)
	if v != 9 {
		t.Errorf("got %d", v)
	}
}

func TestCalloc(t *testing.T) {
	src := `int main(void) {
	int *p;
	p = calloc(8, sizeof(int));
	p[5] = 6;
	int r;
	r = p[5] + p[0];  // calloc memory reads as zero
	free(p);
	return r;
}`
	_, _, v := run(t, src, nil)
	if v != 6 {
		t.Errorf("got %d", v)
	}
}

func TestCastTypesInExpressions(t *testing.T) {
	src := `int main(void) {
	double d;
	d = 3.99;
	long l;
	l = (long) d;          // truncation
	char c;
	c = (char) 300;        // wraps to 44
	unsigned u;
	u = (unsigned) -1;     // 0xffffffff
	return (int) l + c + (int)(u >> 28);
}`
	_, _, v := run(t, src, nil)
	// 3 + 44 + 15 = 62
	if v != 62 {
		t.Errorf("got %d", v)
	}
}

func TestSizeofExprVariants(t *testing.T) {
	src := `
struct P { int x; double y; };
struct P gp;
struct P *gpp;
int main(void) {
	int a[4];
	return sizeof(gp) + sizeof(gp.y) + sizeof(a[0]) + sizeof(*gpp) + sizeof(gpp->y) + sizeof(a);
}`
	_, _, v := run(t, src, nil)
	// 16 + 8 + 4 + 16 + 8 + 16 = 68
	if v != 68 {
		t.Errorf("got %d", v)
	}
}

func TestRvaluePointerSubscript(t *testing.T) {
	// (p+1)[1] subscripts an rvalue pointer expression (indexBase fallback).
	src := `int main(void) {
	int a[4];
	int *p;
	a[2] = 77;
	p = a;
	return (p+1)[1];
}`
	_, _, v := run(t, src, nil)
	if v != 77 {
		t.Errorf("got %d", v)
	}
}

func TestConstEvalInDimensions(t *testing.T) {
	// Exercise shift/mod/unary in constant array dimensions.
	src := `
int a[(1<<4) + (9%4) - (-1)];  // 16 + 1 + 1 = 18... (9%4)=1 → 16+1+1 = 18
int main(void) { return sizeof(a) / sizeof(int); }`
	_, _, v := run(t, src, nil)
	if v != 18 {
		t.Errorf("dim = %d", v)
	}
}

func TestConstEvalErrors(t *testing.T) {
	for _, bad := range []string{
		`int a[4/0]; int main(void){return 0;}`,
		`int a[4%0]; int main(void){return 0;}`,
	} {
		if _, err := Parse(bad, nil); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestTypedefOfPointerAndArray(t *testing.T) {
	src := `
typedef int *IntPtr;
typedef double Vec[4];
Vec gv;
int main(void) {
	IntPtr p;
	int x;
	x = 5;
	p = &x;
	gv[2] = 2.5;
	return *p + (int) gv[2];
}`
	_, _, v := run(t, src, nil)
	if v != 7 {
		t.Errorf("got %d", v)
	}
}

func TestFloatDivisionByZeroFails(t *testing.T) {
	prog := mustParse(t, `int main(void) { double d; d = 1.0 / 0.0; return 0; }`, nil)
	if _, err := NewInterp(prog, nil).Run(); err == nil {
		t.Error("float division by zero accepted")
	}
}

func TestModuloOnFloatsRejected(t *testing.T) {
	prog := mustParse(t, `int main(void) { double d; d = 1.5; d = d % 2; return 0; }`, nil)
	if _, err := NewInterp(prog, nil).Run(); err == nil {
		t.Error("float modulo accepted")
	}
}

func TestUnsignedWideningBehaviour(t *testing.T) {
	src := `int main(void) {
	unsigned char c;
	c = 200;
	int widened;
	widened = c + 100;  // zero-extension: 300, not a negative wrap
	return widened;
}`
	_, _, v := run(t, src, nil)
	if v != 300 {
		t.Errorf("got %d", v)
	}
}

func TestStringLiteralRejectedInExpression(t *testing.T) {
	prog := mustParse(t, `int main(void) { int x; x = "hi" == 0; return x; }`, nil)
	if _, err := NewInterp(prog, nil).Run(); err == nil {
		t.Error("string literal in expression accepted")
	}
}

func TestNestedTernary(t *testing.T) {
	src := `int classify(int x) {
	return x < 0 ? -1 : x == 0 ? 0 : 1;
}
int main(void) { return classify(-5)*100 + classify(0)*10 + classify(7); }`
	_, _, v := run(t, src, nil)
	if v != -1*100+0*10+1 {
		t.Errorf("got %d, want -99", v)
	}
}

func TestErrorMessagesCarryLineNumbers(t *testing.T) {
	_, err := Parse("int main(void) {\n\tint x;\n\tx = @;\n\treturn 0;\n}", nil)
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("err = %v, want line 3 mention", err)
	}
}
