package minic

import (
	"fmt"
	"strings"

	"tracedst/internal/ctype"
)

// Parse parses a miniC translation unit. defines are object-like macro
// definitions applied before parsing (equivalent to -DNAME=VALUE).
func Parse(src string, defines map[string]string) (*Program, error) {
	toks, err := Lex(src, defines)
	if err != nil {
		return nil, err
	}
	p := &parser{
		toks: toks,
		prog: &Program{Env: ctype.NewEnv(), Funcs: map[string]*FuncDecl{}},
	}
	if err := p.parseUnit(); err != nil {
		return nil, err
	}
	return p.prog, nil
}

type parser struct {
	toks []Tok
	pos  int
	prog *Program
}

func (p *parser) peek() Tok { return p.toks[p.pos] }
func (p *parser) peek2() Tok {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() Tok {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) at(text string) bool {
	t := p.peek()
	return (t.Kind == TokPunct || t.Kind == TokIdent) && t.Text == text
}

func (p *parser) accept(text string) bool {
	if p.at(text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	t := p.next()
	if t.Text != text {
		return p.errf(t, "expected %q, got %q", text, t)
	}
	return nil
}

func (p *parser) errf(t Tok, format string, args ...interface{}) error {
	return fmt.Errorf("minic: line %d: %s", t.Line, fmt.Sprintf(format, args...))
}

// ---------------------------------------------------------------------------
// top level

func (p *parser) parseUnit() error {
	for p.peek().Kind != TokEOF {
		if p.accept("typedef") {
			if err := p.parseTypedef(); err != nil {
				return err
			}
			continue
		}
		if err := p.parseTopDecl(); err != nil {
			return err
		}
	}
	if _, ok := p.prog.Funcs["main"]; !ok {
		return fmt.Errorf("minic: program has no main function")
	}
	return nil
}

// parseTypedef handles "typedef <type> Name;" including
// "typedef struct { ... } Name;".
func (p *parser) parseTypedef() error {
	base, err := p.parseTypeSpec()
	if err != nil {
		return err
	}
	for p.accept("*") {
		base = ctype.NewPointer(base)
	}
	nameTok := p.next()
	if nameTok.Kind != TokIdent {
		return p.errf(nameTok, "expected typedef name, got %q", nameTok)
	}
	var dims []int64
	for p.at("[") {
		n, err := p.parseArrayDim()
		if err != nil {
			return err
		}
		dims = append(dims, n)
	}
	for i := len(dims) - 1; i >= 0; i-- {
		base = ctype.NewArray(base, dims[i])
	}
	if err := p.expect(";"); err != nil {
		return err
	}
	// When the typedef names an anonymous struct, give the struct the
	// typedef name so traces and rules can refer to it.
	if st, ok := base.(*ctype.Struct); ok && st.Name == "" {
		named := ctype.NewStruct(nameTok.Text, st.Fields)
		base = named
	}
	return p.prog.Env.DefineTypedef(nameTok.Text, base)
}

// parseTopDecl handles a global variable declaration, a bare struct
// definition, or a function definition.
func (p *parser) parseTopDecl() error {
	p.accept("const")
	p.accept("static")
	base, err := p.parseTypeSpec()
	if err != nil {
		return err
	}
	if p.accept(";") {
		return nil // bare struct definition
	}
	// Look ahead: declarator then '(' means a function definition.
	save := p.pos
	stars := 0
	for p.accept("*") {
		stars++
	}
	nameTok := p.next()
	if nameTok.Kind != TokIdent {
		return p.errf(nameTok, "expected declarator, got %q", nameTok)
	}
	if p.at("(") {
		ret := base
		for i := 0; i < stars; i++ {
			ret = ctype.NewPointer(ret)
		}
		return p.parseFunc(nameTok.Text, ret, nameTok.Line)
	}
	p.pos = save
	decls, err := p.parseDeclarators(base)
	if err != nil {
		return err
	}
	p.prog.Globals = append(p.prog.Globals, decls...)
	return nil
}

// parseTypeSpec parses "void", a primitive, "struct tag", "struct {…}",
// "struct tag {…}" or a typedef name. It returns nil for void.
func (p *parser) parseTypeSpec() (ctype.Type, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return nil, p.errf(t, "expected type, got %q", t)
	}
	if t.Text == "void" {
		p.next()
		return nil, nil
	}
	if t.Text == "struct" {
		p.next()
		return p.parseStructSpec()
	}
	// Multi-word primitive.
	words := []string{p.next().Text}
	for p.peek().Kind == TokIdent {
		cand := strings.Join(append(append([]string{}, words...), p.peek().Text), " ")
		if _, ok := ctype.PrimitiveByName(cand); ok {
			words = append(words, p.next().Text)
			continue
		}
		break
	}
	name := strings.Join(words, " ")
	if prim, ok := ctype.PrimitiveByName(name); ok {
		return prim, nil
	}
	if len(words) == 1 {
		if td, ok := p.prog.Env.Typedef(words[0]); ok {
			return td, nil
		}
	}
	return nil, p.errf(t, "unknown type %q", name)
}

func (p *parser) parseStructSpec() (ctype.Type, error) {
	var tag string
	if p.peek().Kind == TokIdent {
		tag = p.next().Text
	}
	if !p.at("{") {
		if tag == "" {
			return nil, p.errf(p.peek(), "anonymous struct without body")
		}
		st, ok := p.prog.Env.Struct(tag)
		if !ok {
			return nil, p.errf(p.peek(), "undefined struct %q", tag)
		}
		return st, nil
	}
	// Pre-register the tag so the body can reference "struct tag *" members
	// (self-referential lists, trees, …).
	var st *ctype.Struct
	if tag != "" {
		if prior, ok := p.prog.Env.Struct(tag); ok {
			if !prior.Incomplete() {
				return nil, p.errf(p.peek(), "struct %s redefined", tag)
			}
			st = prior
		} else {
			st = ctype.NewIncompleteStruct(tag)
			if err := p.prog.Env.DefineStruct(st); err != nil {
				return nil, fmt.Errorf("minic: %v", err)
			}
		}
	}
	p.next() // '{'
	var fields []ctype.Field
	for !p.at("}") {
		if p.peek().Kind == TokEOF {
			return nil, p.errf(p.peek(), "unterminated struct body")
		}
		base, err := p.parseTypeSpec()
		if err != nil {
			return nil, err
		}
		if base == nil {
			return nil, p.errf(p.peek(), "void field in struct")
		}
		decls, err := p.parseDeclarators(base)
		if err != nil {
			return nil, err
		}
		for _, d := range decls {
			if d.Init != nil {
				return nil, p.errf(p.peek(), "initialiser on struct field %s", d.Name)
			}
			fields = append(fields, ctype.Field{Name: d.Name, Type: d.Type})
		}
	}
	p.next() // '}'
	if st == nil {
		return ctype.NewStruct(tag, fields), nil
	}
	if err := st.Complete(fields); err != nil {
		return nil, fmt.Errorf("minic: %v", err)
	}
	return st, nil
}

// parseDeclarators parses "a, *b, c[4] = expr, …;" for the given base type.
func (p *parser) parseDeclarators(base ctype.Type) ([]VarDecl, error) {
	var decls []VarDecl
	for {
		ty := base
		for p.accept("*") {
			ty = ctype.NewPointer(ty)
		}
		nameTok := p.next()
		if nameTok.Kind != TokIdent {
			return nil, p.errf(nameTok, "expected declarator name, got %q", nameTok)
		}
		var dims []int64
		for p.at("[") {
			n, err := p.parseArrayDim()
			if err != nil {
				return nil, err
			}
			dims = append(dims, n)
		}
		for i := len(dims) - 1; i >= 0; i-- {
			ty = ctype.NewArray(ty, dims[i])
		}
		var init Expr
		var initList []Expr
		if p.accept("=") {
			if p.at("{") {
				p.next()
				for !p.at("}") {
					e, err := p.parseAssignExpr()
					if err != nil {
						return nil, err
					}
					initList = append(initList, e)
					if !p.accept(",") {
						break
					}
				}
				if err := p.expect("}"); err != nil {
					return nil, err
				}
				if _, isArr := ty.(*ctype.Array); !isArr {
					return nil, p.errf(nameTok, "initialiser list on non-array %s", nameTok.Text)
				}
				if int64(len(initList)) > ty.(*ctype.Array).Len {
					return nil, p.errf(nameTok, "too many initialisers for %s", nameTok.Text)
				}
			} else {
				e, err := p.parseAssignExpr()
				if err != nil {
					return nil, err
				}
				init = e
			}
		}
		decls = append(decls, VarDecl{Name: nameTok.Text, Type: ty, Init: init, InitList: initList, Line: nameTok.Line})
		if p.accept(",") {
			continue
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return decls, nil
	}
}

// parseArrayDim parses "[n]" where n must be an integer constant expression
// (already macro-expanded), or "[]" which yields length 0 (decayed later).
func (p *parser) parseArrayDim() (int64, error) {
	if err := p.expect("["); err != nil {
		return 0, err
	}
	if p.accept("]") {
		return 0, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return 0, err
	}
	n, err := constEval(e)
	if err != nil {
		return 0, p.errf(p.peek(), "array dimension must be constant: %v", err)
	}
	if err := p.expect("]"); err != nil {
		return 0, err
	}
	return n, nil
}

// constEval folds an integer constant expression (for array dimensions).
func constEval(e Expr) (int64, error) {
	switch v := e.(type) {
	case *IntLit:
		return v.V, nil
	case *SizeofType:
		return v.Type.Size(), nil
	case *Unary:
		x, err := constEval(v.X)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "-":
			return -x, nil
		case "~":
			return ^x, nil
		case "!":
			if x == 0 {
				return 1, nil
			}
			return 0, nil
		}
		return 0, fmt.Errorf("non-constant unary %s", v.Op)
	case *Binary:
		x, err := constEval(v.X)
		if err != nil {
			return 0, err
		}
		y, err := constEval(v.Y)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "+":
			return x + y, nil
		case "-":
			return x - y, nil
		case "*":
			return x * y, nil
		case "/":
			if y == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			return x / y, nil
		case "%":
			if y == 0 {
				return 0, fmt.Errorf("modulo by zero")
			}
			return x % y, nil
		case "<<":
			return x << uint(y), nil
		case ">>":
			return x >> uint(y), nil
		}
		return 0, fmt.Errorf("non-constant binary %s", v.Op)
	}
	return 0, fmt.Errorf("non-constant expression %T", e)
}

// parseFunc parses a function definition after its name.
func (p *parser) parseFunc(name string, ret ctype.Type, line int) error {
	if err := p.expect("("); err != nil {
		return err
	}
	var params []Param
	if !p.at(")") {
		for {
			if p.accept("void") {
				break
			}
			base, err := p.parseTypeSpec()
			if err != nil {
				return err
			}
			if base == nil {
				return p.errf(p.peek(), "void parameter with name")
			}
			ty := base
			for p.accept("*") {
				ty = ctype.NewPointer(ty)
			}
			nameTok := p.next()
			if nameTok.Kind != TokIdent {
				return p.errf(nameTok, "expected parameter name, got %q", nameTok)
			}
			// Array parameters decay to pointers.
			for p.at("[") {
				if _, err := p.parseArrayDim(); err != nil {
					return err
				}
				ty = ctype.NewPointer(ty)
			}
			params = append(params, Param{Name: nameTok.Text, Type: ty})
			if !p.accept(",") {
				break
			}
		}
	}
	if err := p.expect(")"); err != nil {
		return err
	}
	body, err := p.parseBlock()
	if err != nil {
		return err
	}
	if _, dup := p.prog.Funcs[name]; dup {
		return fmt.Errorf("minic: function %s redefined", name)
	}
	p.prog.Funcs[name] = &FuncDecl{Name: name, Params: params, Ret: ret, Body: body, Line: line}
	return nil
}

// ---------------------------------------------------------------------------
// statements

func (p *parser) parseBlock() (*Block, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.at("}") {
		if p.peek().Kind == TokEOF {
			return nil, p.errf(p.peek(), "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next()
	return b, nil
}

// isTypeName reports whether the current token names a type — used in cast
// and sizeof contexts where a bare type may appear.
func (p *parser) isTypeName() bool {
	t := p.peek()
	if t.Kind != TokIdent {
		return false
	}
	switch t.Text {
	case "struct", "const", "static", "void":
		return true
	}
	if _, ok := ctype.PrimitiveByName(t.Text); ok {
		return true
	}
	_, ok := p.prog.Env.Typedef(t.Text)
	return ok
}

// startsType reports whether the current token begins a declaration
// statement. Unlike isTypeName, a typedef name only counts when followed
// by a declarator ("T x" or "T *p"), so expressions may use identifiers
// that merely resemble type names.
func (p *parser) startsType() bool {
	t := p.peek()
	if !p.isTypeName() {
		return false
	}
	if _, ok := p.prog.Env.Typedef(t.Text); ok {
		n := p.peek2()
		return n.Kind == TokIdent || n.Text == "*"
	}
	return true
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	switch {
	case t.Text == "{":
		return p.parseBlock()
	case t.Text == ";":
		p.next()
		return &Block{}, nil
	case t.Text == "typedef":
		p.next()
		if err := p.parseTypedef(); err != nil {
			return nil, err
		}
		return &Block{}, nil
	case t.Text == "GLEIPNIR_START_INSTRUMENTATION":
		p.next()
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Gleipnir{On: true}, nil
	case t.Text == "GLEIPNIR_STOP_INSTRUMENTATION":
		p.next()
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Gleipnir{On: false}, nil
	case t.Text == "for":
		return p.parseFor()
	case t.Text == "while":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &While{Cond: cond, Body: body}, nil
	case t.Text == "do":
		p.next()
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expect("while"); err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &DoWhile{Body: body, Cond: cond}, nil
	case t.Text == "if":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.accept("else") {
			els, err = p.parseStmt()
			if err != nil {
				return nil, err
			}
		}
		return &If{Cond: cond, Then: then, Else: els}, nil
	case t.Text == "switch":
		return p.parseSwitch()
	case t.Text == "return":
		p.next()
		if p.accept(";") {
			return &Return{}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Return{X: e}, nil
	case t.Text == "break":
		p.next()
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Break{}, nil
	case t.Text == "continue":
		p.next()
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Continue{}, nil
	case p.startsType():
		return p.parseDeclStmt()
	default:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ExprStmt{X: e}, nil
	}
}

func (p *parser) parseDeclStmt() (Stmt, error) {
	p.accept("const")
	p.accept("static")
	base, err := p.parseTypeSpec()
	if err != nil {
		return nil, err
	}
	if base == nil {
		return nil, p.errf(p.peek(), "void variable declaration")
	}
	if p.accept(";") {
		return &Block{}, nil // bare struct definition inside a function
	}
	decls, err := p.parseDeclarators(base)
	if err != nil {
		return nil, err
	}
	return &DeclStmt{Decls: decls}, nil
}

// parseSwitch parses "switch (expr) { case N: … default: … }". Case labels
// must be integer constant expressions.
func (p *parser) parseSwitch() (Stmt, error) {
	p.next() // switch
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	sw := &Switch{Cond: cond}
	var cur *SwitchCase
	sawDefault := false
	for !p.at("}") {
		t := p.peek()
		switch {
		case t.Kind == TokEOF:
			return nil, p.errf(t, "unterminated switch body")
		case t.Text == "case":
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			v, err := constEval(e)
			if err != nil {
				return nil, p.errf(t, "case label must be constant: %v", err)
			}
			if err := p.expect(":"); err != nil {
				return nil, err
			}
			if cur == nil || len(cur.Body) > 0 || cur.Default {
				sw.Cases = append(sw.Cases, SwitchCase{})
				cur = &sw.Cases[len(sw.Cases)-1]
			}
			cur.Vals = append(cur.Vals, v)
		case t.Text == "default":
			if sawDefault {
				return nil, p.errf(t, "duplicate default label")
			}
			sawDefault = true
			p.next()
			if err := p.expect(":"); err != nil {
				return nil, err
			}
			sw.Cases = append(sw.Cases, SwitchCase{Default: true})
			cur = &sw.Cases[len(sw.Cases)-1]
		default:
			if cur == nil {
				return nil, p.errf(t, "statement before first case label")
			}
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			cur.Body = append(cur.Body, s)
		}
	}
	p.next() // }
	return sw, nil
}

func (p *parser) parseFor() (Stmt, error) {
	p.next() // for
	if err := p.expect("("); err != nil {
		return nil, err
	}
	f := &For{}
	if !p.at(";") {
		if p.startsType() {
			s, err := p.parseDeclStmt()
			if err != nil {
				return nil, err
			}
			f.Init = s
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			f.Init = &ExprStmt{X: e}
		}
	} else {
		p.next()
	}
	if !p.at(";") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Cond = e
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if !p.at(")") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Post = e
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

// ---------------------------------------------------------------------------
// expressions (precedence climbing)

// parseExpr parses a full expression including the comma operator.
func (p *parser) parseExpr() (Expr, error) {
	e, err := p.parseAssignExpr()
	if err != nil {
		return nil, err
	}
	if !p.at(",") {
		return e, nil
	}
	c := &Comma{List: []Expr{e}}
	for p.accept(",") {
		n, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		c.List = append(c.List, n)
	}
	return c, nil
}

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

func (p *parser) parseAssignExpr() (Expr, error) {
	lhs, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind == TokPunct && assignOps[p.peek().Text] {
		op := p.next().Text
		rhs, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		return &Assign{Op: op, LHS: lhs, RHS: rhs}, nil
	}
	return lhs, nil
}

func (p *parser) parseCondExpr() (Expr, error) {
	c, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if p.accept("?") {
		t, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		f, err := p.parseCondExpr()
		if err != nil {
			return nil, err
		}
		return &Cond{C: c, T: t, F: f}, nil
	}
	return c, nil
}

// binary operator precedence (C levels, higher binds tighter).
var binPrec = map[string]int{
	"||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		prec, ok := binPrec[t.Text]
		if t.Kind != TokPunct || !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: t.Text, X: lhs, Y: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	switch t.Text {
	case "-", "!", "~", "*", "&":
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: t.Text, X: x}, nil
	case "++", "--":
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: t.Text, X: x}, nil
	case "sizeof":
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		if p.isTypeName() {
			ty, err := p.parseCastType()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return &SizeofType{Type: ty}, nil
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &SizeofExpr{X: x}, nil
	case "(":
		// Either a cast or a parenthesised expression.
		save := p.pos
		p.next()
		if p.isTypeName() {
			ty, err := p.parseCastType()
			if err == nil && p.accept(")") {
				x, err := p.parseUnary()
				if err != nil {
					return nil, err
				}
				return &Cast{Type: ty, X: x}, nil
			}
			p.pos = save
		} else {
			p.pos = save
		}
	}
	return p.parsePostfix()
}

// parseCastType parses the type inside a cast or sizeof: base, stars, dims.
func (p *parser) parseCastType() (ctype.Type, error) {
	base, err := p.parseTypeSpec()
	if err != nil {
		return nil, err
	}
	if base == nil {
		base = ctype.Char // void* → treat as char* for arithmetic
	}
	ty := base
	for p.accept("*") {
		ty = ctype.NewPointer(ty)
	}
	for p.at("[") {
		n, err := p.parseArrayDim()
		if err != nil {
			return nil, err
		}
		ty = ctype.NewArray(ty, n)
	}
	return ty, nil
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch t.Text {
		case "[":
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &Index{X: x, I: idx}
		case ".":
			p.next()
			nt := p.next()
			if nt.Kind != TokIdent {
				return nil, p.errf(nt, "expected member name, got %q", nt)
			}
			x = &Member{X: x, Name: nt.Text}
		case "->":
			p.next()
			nt := p.next()
			if nt.Kind != TokIdent {
				return nil, p.errf(nt, "expected member name, got %q", nt)
			}
			x = &Member{X: x, Name: nt.Text, Arrow: true}
		case "++", "--":
			p.next()
			x = &Unary{Op: t.Text, X: x, Postfix: true}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.Kind {
	case TokInt, TokChar:
		return &IntLit{V: t.Int}, nil
	case TokFloat:
		return &FloatLit{V: t.Fl}, nil
	case TokString:
		return &StrLit{S: t.Text}, nil
	case TokIdent:
		if p.at("(") {
			p.next()
			call := &Call{Name: t.Text, Line: t.Line}
			if !p.at(")") {
				for {
					a, err := p.parseAssignExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(",") {
						break
					}
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &Ident{Name: t.Text, Line: t.Line}, nil
	case TokPunct:
		if t.Text == "(" {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf(t, "unexpected token %q in expression", t)
}
