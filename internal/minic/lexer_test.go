package minic

import "testing"

func kinds(toks []Tok) []TokKind {
	out := make([]TokKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("int x = 42;", nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"int", "x", "=", "42", ";", "EOF"}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	for i, w := range want {
		if toks[i].String() != w {
			t.Errorf("token %d = %q, want %q", i, toks[i], w)
		}
	}
	if toks[3].Int != 42 {
		t.Errorf("literal value = %d", toks[3].Int)
	}
}

func TestLexMultiCharPunct(t *testing.T) {
	toks, err := Lex("a->b ++ -- <= >= == != && || += <<", nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "->", "b", "++", "--", "<=", ">=", "==", "!=", "&&", "||", "+=", "<<"}
	for i, w := range want {
		if toks[i].Text != w {
			t.Errorf("token %d = %q, want %q", i, toks[i].Text, w)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("a // comment\nb /* multi\nline */ c", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 { // a b c EOF
		t.Fatalf("tokens = %v", toks)
	}
	if toks[2].Line != 3 {
		t.Errorf("c on line %d, want 3", toks[2].Line)
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := Lex("0x1F 3.5 10UL 2.0f 7", nil)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokInt || toks[0].Int != 31 {
		t.Errorf("hex = %+v", toks[0])
	}
	if toks[1].Kind != TokFloat || toks[1].Fl != 3.5 {
		t.Errorf("float = %+v", toks[1])
	}
	if toks[2].Kind != TokInt || toks[2].Int != 10 {
		t.Errorf("suffixed = %+v", toks[2])
	}
	if toks[3].Kind != TokFloat || toks[3].Fl != 2.0 {
		t.Errorf("f-suffix = %+v", toks[3])
	}
}

func TestLexCharAndString(t *testing.T) {
	toks, err := Lex(`'a' '\n' "hello"`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokChar || toks[0].Int != 'a' {
		t.Errorf("char = %+v", toks[0])
	}
	if toks[1].Int != '\n' {
		t.Errorf("escape = %+v", toks[1])
	}
	if toks[2].Kind != TokString || toks[2].Text != "hello" {
		t.Errorf("string = %+v", toks[2])
	}
}

func TestLexDefineMacro(t *testing.T) {
	src := "#define LEN 16\n#define DOUBLELEN LEN*2\nint a[LEN]; int b[DOUBLELEN];"
	toks, err := Lex(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	// a [ 16 ] — the macro must expand to the integer token.
	found16 := false
	for _, tk := range toks {
		if tk.Kind == TokInt && tk.Int == 16 {
			found16 = true
		}
	}
	if !found16 {
		t.Errorf("LEN did not expand: %v", toks)
	}
}

func TestLexExternalDefines(t *testing.T) {
	toks, err := Lex("int a[LEN];", map[string]string{"LEN": "1024"})
	if err != nil {
		t.Fatal(err)
	}
	if toks[3].Kind != TokInt || toks[3].Int != 1024 {
		t.Errorf("define expansion = %v", toks)
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{
		"int a @ b;",
		"'unterminated",
		`"unterminated`,
		"/* unterminated",
		"#define F(x) x",
		"#error nope",
		"\"multi\nline\"",
	} {
		if _, err := Lex(bad, nil); err == nil {
			t.Errorf("Lex(%q) unexpectedly succeeded", bad)
		}
	}
	if _, err := Lex("x", map[string]string{"BAD": "'"}); err == nil {
		t.Error("bad define body accepted")
	}
}

func TestLexLineNumbers(t *testing.T) {
	toks, err := Lex("a\nb\n\nc", nil)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[1].Line != 2 || toks[2].Line != 4 {
		t.Errorf("lines = %d %d %d", toks[0].Line, toks[1].Line, toks[2].Line)
	}
	_ = kinds(toks)
}
