package minic

import (
	"tracedst/internal/ctype"
)

// Expr is any expression node.
type Expr interface{ exprNode() }

// Ident references a variable (or enumerates a macro-expanded constant).
type Ident struct {
	Name string
	Line int
}

// IntLit is an integer constant.
type IntLit struct{ V int64 }

// FloatLit is a floating-point constant.
type FloatLit struct{ V float64 }

// StrLit is a string literal (only useful as a call argument placeholder).
type StrLit struct{ S string }

// Unary is a prefix or postfix unary operation: -x !x ~x *p &x ++x x++ --x x--.
type Unary struct {
	Op      string
	X       Expr
	Postfix bool // true for x++ / x--
}

// Binary is a binary operation.
type Binary struct {
	Op   string
	X, Y Expr
}

// Assign is simple or compound assignment (=, +=, -=, …).
type Assign struct {
	Op  string
	LHS Expr
	RHS Expr
}

// Index is array subscripting x[i].
type Index struct {
	X Expr
	I Expr
}

// Member is member access x.Name or p->Name.
type Member struct {
	X     Expr
	Name  string
	Arrow bool
}

// Call is a function call by name.
type Call struct {
	Name string
	Args []Expr
	Line int
}

// Cast is (T)x.
type Cast struct {
	Type ctype.Type
	X    Expr
}

// SizeofType is sizeof(T).
type SizeofType struct{ Type ctype.Type }

// SizeofExpr is sizeof(expr); the operand is not evaluated.
type SizeofExpr struct{ X Expr }

// Cond is the ternary operator c ? t : f.
type Cond struct {
	C, T, F Expr
}

// Comma is the C comma operator: operands evaluate left to right and the
// value is the last one's.
type Comma struct {
	List []Expr
}

func (*Ident) exprNode()      {}
func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*StrLit) exprNode()     {}
func (*Unary) exprNode()      {}
func (*Binary) exprNode()     {}
func (*Assign) exprNode()     {}
func (*Index) exprNode()      {}
func (*Member) exprNode()     {}
func (*Call) exprNode()       {}
func (*Cast) exprNode()       {}
func (*SizeofType) exprNode() {}
func (*SizeofExpr) exprNode() {}
func (*Cond) exprNode()       {}
func (*Comma) exprNode()      {}

// Stmt is any statement node.
type Stmt interface{ stmtNode() }

// VarDecl is one declarator of a declaration statement.
type VarDecl struct {
	Name string
	Type ctype.Type
	Init Expr // nil when uninitialised (mutually exclusive with InitList)
	// InitList holds a brace-enclosed initialiser list for arrays; missing
	// trailing elements are zero, as in C.
	InitList []Expr
	Line     int
}

// DeclStmt declares one or more variables.
type DeclStmt struct{ Decls []VarDecl }

// ExprStmt evaluates an expression for its effects.
type ExprStmt struct{ X Expr }

// Block is a { … } statement list.
type Block struct{ Stmts []Stmt }

// For is a C for loop; Init may be a DeclStmt (C99) or ExprStmt, and any of
// the three clauses may be nil.
type For struct {
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
}

// While is a while loop.
type While struct {
	Cond Expr
	Body Stmt
}

// DoWhile is a do { } while loop.
type DoWhile struct {
	Body Stmt
	Cond Expr
}

// If is a conditional statement.
type If struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// Return exits the current function; X may be nil.
type Return struct{ X Expr }

// Break exits the innermost loop.
type Break struct{}

// Continue advances the innermost loop.
type Continue struct{}

// SwitchCase is one "case v1: case v2: stmts" arm of a Switch (Default
// true for the default arm). Execution falls through to the next arm
// unless the body breaks, as in C.
type SwitchCase struct {
	Vals    []int64 // matched constants (empty for default)
	Default bool
	Body    []Stmt
}

// Switch is a C switch statement over integer constants.
type Switch struct {
	Cond  Expr
	Cases []SwitchCase
}

// Gleipnir is a GLEIPNIR_START/STOP_INSTRUMENTATION marker statement.
type Gleipnir struct{ On bool }

func (*DeclStmt) stmtNode() {}
func (*ExprStmt) stmtNode() {}
func (*Block) stmtNode()    {}
func (*For) stmtNode()      {}
func (*While) stmtNode()    {}
func (*DoWhile) stmtNode()  {}
func (*If) stmtNode()       {}
func (*Return) stmtNode()   {}
func (*Switch) stmtNode()   {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}
func (*Gleipnir) stmtNode() {}

// Param is a function parameter. Array parameters decay to pointers at
// parse time, as in C.
type Param struct {
	Name string
	Type ctype.Type
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Params []Param
	Ret    ctype.Type // nil for void
	Body   *Block
	Line   int
}

// Program is a parsed translation unit.
type Program struct {
	// Env holds struct tags and typedefs defined by the program.
	Env *ctype.Env
	// Globals in declaration order.
	Globals []VarDecl
	// Funcs by name.
	Funcs map[string]*FuncDecl
}
