package minic

import "testing"

// TestBlockScopeSlotReuse: a block-scoped local declared inside a loop must
// reuse the same stack slot every iteration, as compiled code does — the
// frame must not grow with the iteration count.
func TestBlockScopeSlotReuse(t *testing.T) {
	src := `int main(void) {
	int total;
	total = 0;
	for (int i = 0; i < 50; i++) {
		int k;
		k = i * 2;
		total += k;
	}
	return total;
}`
	_, rec, v := run(t, src, nil)
	if v != 2450 {
		t.Fatalf("total = %d, want 2450", v)
	}
	// Collect the distinct addresses written for k (4-byte stores that are
	// not total/i). All k stores must hit one address.
	addrs := map[uint64]bool{}
	for _, e := range rec.events {
		if e.op == OpStore && e.size == 4 {
			addrs[e.addr] = true
		}
	}
	// total, i, k: exactly 3 distinct 4-byte store addresses.
	if len(addrs) != 3 {
		t.Errorf("distinct store addresses = %d, want 3 (slot reuse broken)", len(addrs))
	}
}

// TestNestedLoopSlotsBounded: the matmul-style triple nest must keep its
// frame bounded regardless of trip counts.
func TestNestedLoopSlotsBounded(t *testing.T) {
	src := `int main(void) {
	int sink;
	sink = 0;
	for (int i = 0; i < 10; i++) {
		for (int j = 0; j < 10; j++) {
			int s;
			s = i + j;
			for (int k = 0; k < 10; k++) {
				s += k;
			}
			sink += s;
		}
	}
	return sink;
}`
	p := mustParse(t, src, nil)
	rec := &recorder{}
	in := NewInterp(p, rec)
	if _, err := in.Run(); err != nil {
		t.Fatal(err)
	}
	// Frame span: highest minus lowest touched stack address must be tiny
	// (a handful of ints), not proportional to 10*10 allocations.
	var lo, hi uint64 = ^uint64(0), 0
	for _, e := range rec.events {
		if e.addr < lo {
			lo = e.addr
		}
		if e.addr > hi {
			hi = e.addr
		}
	}
	if span := hi - lo; span > 128 {
		t.Errorf("frame span = %d bytes, want small (slot reuse broken)", span)
	}
}

// TestSymtabDescribesInnermostAfterReuse: after a block exits and its slot
// is reused, the symbol table must describe the new variable.
func TestSymtabDescribesInnermostAfterReuse(t *testing.T) {
	src := `int main(void) {
	{
		int first;
		first = 1;
	}
	{
		int second;
		second = 2;
	}
	return 0;
}`
	p := mustParse(t, src, nil)
	rec := &recorder{}
	in := NewInterp(p, rec)
	if _, err := in.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rec.events) != 2 {
		t.Fatalf("events = %+v", rec.events)
	}
	if rec.events[0].addr != rec.events[1].addr {
		t.Errorf("blocks did not share the slot: %#x vs %#x",
			rec.events[0].addr, rec.events[1].addr)
	}
}

// TestScopeReleaseDoesNotBreakZzq: the hidden _zzq_result slot lives in the
// function body's scope and must stay valid across later blocks.
func TestScopeReleaseDoesNotBreakZzq(t *testing.T) {
	src := `int main(void) {
	GLEIPNIR_START_INSTRUMENTATION;
	int x;
	x = 0;
	{
		int y;
		y = 1;
		x += y;
	}
	GLEIPNIR_STOP_INSTRUMENTATION;
	return x;
}`
	_, _, v := run(t, src, nil)
	if v != 1 {
		t.Errorf("got %d", v)
	}
}

// TestCommaOperator checks C comma semantics in expressions and for loops.
func TestCommaOperator(t *testing.T) {
	src := `int main(void) {
	int a[8];
	int i, j, n;
	for (i = 0; i < 8; i++) a[i] = i;
	n = 0;
	for (i = 0, j = 7; i < j; i++, j--) {
		n += a[i] * a[j];
	}
	return n;
}`
	_, _, v := run(t, src, nil)
	// 0*7 + 1*6 + 2*5 + 3*4 = 28
	if v != 28 {
		t.Errorf("got %d, want 28", v)
	}
}

// TestCommaValueIsLast: the comma expression's value is its last operand.
func TestCommaValueIsLast(t *testing.T) {
	src := `int main(void) {
	int x, y;
	y = (x = 3, x + 4);
	return y;
}`
	_, _, v := run(t, src, nil)
	if v != 7 {
		t.Errorf("got %d, want 7", v)
	}
}

// TestArrayInitializerList covers global (silent) and local (element-wise
// store) brace initialisation.
func TestArrayInitializerList(t *testing.T) {
	src := `
int table[6] = {2, 3, 5, 7, 11};
int main(void) {
	int local[4] = {10, 20};
	return table[3] + table[5] + local[1] + local[3];
}`
	_, rec, v := run(t, src, nil)
	// 7 + 0 + 20 + 0 = 27
	if v != 27 {
		t.Errorf("got %d, want 27", v)
	}
	// Global init is static (no events); local init stores per provided
	// element (2 stores), then 4 loads for the return expression.
	if got := rec.ops(); got != "SSLLLL" {
		t.Errorf("ops = %s, want SSLLLL", got)
	}
}

func TestInitializerListErrors(t *testing.T) {
	for _, bad := range []string{
		`int main(void) { int x = {1}; return 0; }`,          // non-array
		`int main(void) { int a[2] = {1, 2, 3}; return 0; }`, // too many
		`int main(void) { int a[2] = {1, ; return 0; }`,      // malformed
	} {
		if _, err := Parse(bad, nil); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
	// Non-constant global list fails at run time.
	prog := mustParse(t, `int g[2] = {1, 2}; int main(void) { return g[0]; }`, nil)
	if _, err := NewInterp(prog, nil).Run(); err != nil {
		t.Errorf("constant global list failed: %v", err)
	}
}
