package minic

import (
	"strings"
	"testing"
)

func TestSwitchBasic(t *testing.T) {
	src := `int classify(int x) {
	switch (x) {
	case 0:
		return 10;
	case 1:
	case 2:
		return 20;
	default:
		return 30;
	}
}
int main(void) {
	return classify(0)*100 + classify(2)*10 + classify(9)/10;
}`
	_, _, v := run(t, src, nil)
	// 10*100 + 20*10 + 3 = 1203
	if v != 1203 {
		t.Errorf("got %d, want 1203", v)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	src := `int main(void) {
	int n, x;
	n = 0;
	x = 1;
	switch (x) {
	case 1:
		n = n + 1;
	case 2:
		n = n + 10;
		break;
	case 3:
		n = n + 100;
	}
	return n;
}`
	_, _, v := run(t, src, nil)
	if v != 11 {
		t.Errorf("got %d, want 11 (fallthrough from case 1 into 2)", v)
	}
}

func TestSwitchNoMatchNoDefault(t *testing.T) {
	src := `int main(void) {
	int n;
	n = 5;
	switch (n) {
	case 1:
		n = 0;
		break;
	}
	return n;
}`
	_, _, v := run(t, src, nil)
	if v != 5 {
		t.Errorf("got %d, want 5", v)
	}
}

func TestSwitchBreakInsideLoop(t *testing.T) {
	src := `int main(void) {
	int n;
	n = 0;
	for (int i = 0; i < 5; i++) {
		switch (i) {
		case 3:
			n = n + 100;
			break;
		default:
			n = n + 1;
			break;
		}
	}
	return n;
}`
	_, _, v := run(t, src, nil)
	// 4 iterations add 1, one adds 100: switch break must not exit the for.
	if v != 104 {
		t.Errorf("got %d, want 104", v)
	}
}

func TestSwitchReturnPropagates(t *testing.T) {
	src := `int pick(int x) {
	switch (x) {
	case 1: return 7;
	default: return 9;
	}
}
int main(void) { return pick(1); }`
	_, _, v := run(t, src, nil)
	if v != 7 {
		t.Errorf("got %d", v)
	}
}

func TestSwitchCondEmitsLoads(t *testing.T) {
	src := `int main(void) {
	int x;
	x = 2;
	switch (x) {
	case 2:
		break;
	}
	return 0;
}`
	_, rec, _ := run(t, src, nil)
	// S(x=2), L(x) for the switch condition; case labels are constants and
	// emit nothing.
	if rec.ops() != "SL" {
		t.Errorf("ops = %s, want SL", rec.ops())
	}
}

func TestSwitchConstExprLabels(t *testing.T) {
	src := `int main(void) {
	switch (8) {
	case 4*2:
		return 1;
	}
	return 0;
}`
	_, _, v := run(t, src, nil)
	if v != 1 {
		t.Errorf("got %d", v)
	}
}

func TestSwitchParseErrors(t *testing.T) {
	for _, bad := range []string{
		`int main(void) { switch (1) { x = 1; } return 0; }`,                       // stmt before case
		`int main(void) { int y; y = 2; switch (1) { case y: break; } return 0; }`, // non-const label
		`int main(void) { switch (1) { default: break; default: break; } return 0; }`,
		`int main(void) { switch (1) { case 1 break; } return 0; }`, // missing colon
		`int main(void) { switch (1) { case 1: break; `,             // unterminated
	} {
		if _, err := Parse(bad, nil); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestSwitchContinueInsideLoop(t *testing.T) {
	src := `int main(void) {
	int n;
	n = 0;
	for (int i = 0; i < 4; i++) {
		switch (i) {
		case 1:
			continue;
		}
		n = n + 1;
	}
	return n;
}`
	_, _, v := run(t, src, nil)
	if v != 3 {
		t.Errorf("got %d, want 3 (continue skips one increment)", v)
	}
}

func TestSwitchInWorkloadStyle(t *testing.T) {
	// A dispatch-table-style kernel: switch drives which array is touched.
	src := `
int a[8]; int b[8]; int c[8];
int main(void) {
	GLEIPNIR_START_INSTRUMENTATION;
	for (int i = 0; i < 8; i++) {
		switch (i % 3) {
		case 0: a[i] = i; break;
		case 1: b[i] = i; break;
		default: c[i] = i; break;
		}
	}
	GLEIPNIR_STOP_INSTRUMENTATION;
	return 0;
}`
	_, rec, _ := run(t, src, nil)
	var sa, sb, sc int
	for _, e := range rec.events {
		_ = e
	}
	text := strings.Builder{}
	for _, e := range rec.events {
		_ = e
		text.WriteByte(byte(e.op))
	}
	// i%3 over 0..7 → a: i=0,3,6 (3 stores), b: i=1,4,7 (3), c: i=2,5 (2).
	prog := mustParse(t, src, nil)
	r2 := &recorder{}
	in := NewInterp(prog, r2)
	if _, err := in.Run(); err != nil {
		t.Fatal(err)
	}
	for _, e := range r2.events {
		if e.op != OpStore || e.size != 4 {
			continue
		}
		ref, ok := in.Syms.Describe(e.addr, 0)
		if !ok {
			continue
		}
		switch ref.Sym.Name {
		case "a":
			sa++
		case "b":
			sb++
		case "c":
			sc++
		}
	}
	if sa != 3 || sb != 3 || sc != 2 {
		t.Errorf("stores a=%d b=%d c=%d, want 3/3/2", sa, sb, sc)
	}
}
