package minic

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"tracedst/internal/memmodel"
)

// recEvent is one recorded listener callback.
type recEvent struct {
	op    AccessOp
	addr  uint64
	size  int64
	fn    string
	depth int
}

type recorder struct {
	events []recEvent
	instr  []bool
}

func (r *recorder) Access(op AccessOp, addr uint64, size int64, fn string, depth int) {
	r.events = append(r.events, recEvent{op, addr, size, fn, depth})
}

func (r *recorder) Instrument(on bool) { r.instr = append(r.instr, on) }

// ops renders the recorded op sequence like "SLLLS".
func (r *recorder) ops() string {
	var b strings.Builder
	for _, e := range r.events {
		b.WriteByte(byte(e.op))
	}
	return b.String()
}

func run(t *testing.T, src string, defines map[string]string) (*Interp, *recorder, int64) {
	t.Helper()
	p := mustParse(t, src, defines)
	rec := &recorder{}
	in := NewInterp(p, rec)
	v, err := in.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return in, rec, v
}

func TestRunSimpleGlobalStore(t *testing.T) {
	in, rec, v := run(t, `int glScalar; int main(void) { glScalar = 321; return glScalar; }`, nil)
	if v != 321 {
		t.Errorf("return = %d", v)
	}
	if len(rec.events) != 2 {
		t.Fatalf("events = %+v", rec.events)
	}
	if rec.events[0].op != OpStore || rec.events[0].addr != memmodel.DataBase || rec.events[0].size != 4 {
		t.Errorf("store = %+v", rec.events[0])
	}
	if rec.events[1].op != OpLoad || rec.events[1].fn != "main" || rec.events[1].depth != 0 {
		t.Errorf("load = %+v", rec.events[1])
	}
	if in.Steps() == 0 {
		t.Error("no steps counted")
	}
}

// The paper's loop pattern (Listing 2 trace lines 6-17):
// for (i=0; i<2; i++) lcArray[i] = glScalar;
// must produce S(i) then per iteration L(i) L(glScalar) L(i) S(lcArray[i]) M(i),
// with a final failing condition load.
func TestRunLoopEventPattern(t *testing.T) {
	src := `int glScalar;
int main(void) {
	int i, lcArray[10];
	glScalar = 321;
	for (i=0; i<2; i++)
		lcArray[i] = glScalar;
	return 0;
}`
	_, rec, _ := run(t, src, nil)
	// S(glScalar) S(i) | L(i) L(glScalar) L(i) S(arr) M(i) | ... | L(i)
	want := "SS" + "LLLSM" + "LLLSM" + "L"
	if rec.ops() != want {
		t.Errorf("ops = %s, want %s", rec.ops(), want)
	}
	// lcArray stores are 4 bytes apart.
	s0, s1 := rec.events[5], rec.events[10]
	if s1.addr-s0.addr != 4 {
		t.Errorf("consecutive element stores at %#x then %#x", s0.addr, s1.addr)
	}
}

// Address-computation deduplication: glStructArray[i].myArray[i] loads i
// once (paper trace lines 26-29: L i, L glArray[1], L i, S ...).
func TestRunLValueDedup(t *testing.T) {
	src := `
struct _typeA { double d1; int myArray[10]; };
struct _typeA glStructArray[10];
int glArray[10];
int main(void) {
	int i;
	i = 0;
	glStructArray[i].myArray[i] = glArray[i+1];
	return 0;
}`
	_, rec, _ := run(t, src, nil)
	// S(i=0), then: L(i) L(glArray[1]) [rhs] L(i) [lhs, deduped] S(target)
	if got := rec.ops(); got != "SLLLS" {
		t.Errorf("ops = %s, want SLLLS", got)
	}
}

// Call protocol: return-address push attributed to the caller, frame save
// and parameter stores to the callee (paper trace lines 18-20).
func TestRunCallProtocol(t *testing.T) {
	src := `
void foo(int x) { x = x; }
int main(void) {
	foo(7);
	return 0;
}`
	_, rec, _ := run(t, src, nil)
	// S retaddr (main), S rbp (foo), S param x (foo), then body L x, M?  x = x is L then S.
	if len(rec.events) < 5 {
		t.Fatalf("events = %+v", rec.events)
	}
	if rec.events[0].op != OpStore || rec.events[0].fn != "main" || rec.events[0].depth != 0 {
		t.Errorf("retaddr = %+v", rec.events[0])
	}
	if rec.events[1].op != OpStore || rec.events[1].fn != "foo" || rec.events[1].depth != 1 {
		t.Errorf("rbp = %+v", rec.events[1])
	}
	if rec.events[2].op != OpStore || rec.events[2].fn != "foo" || rec.events[2].size != 4 {
		t.Errorf("param = %+v", rec.events[2])
	}
	// Addresses descend down the stack.
	if !(rec.events[0].addr > rec.events[1].addr && rec.events[1].addr > rec.events[2].addr) {
		t.Errorf("stack layout: %#x %#x %#x", rec.events[0].addr, rec.events[1].addr, rec.events[2].addr)
	}
}

func TestRunFunctionReturnValue(t *testing.T) {
	src := `
int add(int a, int b) { return a + b; }
int main(void) { int r; r = add(2, 40); return r; }`
	_, _, v := run(t, src, nil)
	if v != 42 {
		t.Errorf("return = %d", v)
	}
}

// Pointer outlining pattern (Listing 7): p->field access loads the pointer.
func TestRunPointerIndirection(t *testing.T) {
	src := `
typedef struct { double mY; int mZ; } RarelyUsed;
typedef struct { int mFrequentlyUsed; RarelyUsed *mRarelyUsed; } MyOutlinedStruct;
int main(void) {
	RarelyUsed lStorageForRarelyUsed[16];
	MyOutlinedStruct lS2[16];
	int lI;
	for (lI=0 ; lI<1 ; lI++) {
		lS2[lI].mRarelyUsed = lStorageForRarelyUsed+lI;
	}
	lI = 0;
	lS2[lI].mRarelyUsed->mY = lI;
	return 0;
}`
	_, rec, _ := run(t, src, nil)
	ops := rec.ops()
	// Tail of the trace: S(lI=0), L(lI rhs), L(lI index), L(pointer), S(pool.mY)
	if !strings.HasSuffix(ops, "SLLLS") {
		t.Errorf("ops = %s, want suffix SLLLS", ops)
	}
	// The inserted pointer load is 8 bytes; the final store is the double.
	n := len(rec.events)
	if rec.events[n-2].size != 8 || rec.events[n-1].size != 8 {
		t.Errorf("tail events = %+v", rec.events[n-2:])
	}
	// The store must land in lStorageForRarelyUsed, not in lS2: the pool was
	// declared first, so it sits at higher stack addresses.
	ptrLoad, store := rec.events[n-2], rec.events[n-1]
	if store.addr <= ptrLoad.addr {
		t.Errorf("outlined store at %#x not above pointer field %#x", store.addr, ptrLoad.addr)
	}
}

func TestRunPointerArithmeticValues(t *testing.T) {
	src := `
int main(void) {
	int a[4];
	int *p;
	int i;
	for (i=0; i<4; i++) a[i] = i*10;
	p = a + 1;
	return p[2];  // a[3] == 30
}`
	_, _, v := run(t, src, nil)
	if v != 30 {
		t.Errorf("p[2] = %d, want 30", v)
	}
}

func TestRunDerefAndAddressOf(t *testing.T) {
	src := `
int main(void) {
	int x, *p;
	x = 5;
	p = &x;
	*p = 9;
	return x + *p;
}`
	_, _, v := run(t, src, nil)
	if v != 18 {
		t.Errorf("got %d", v)
	}
}

func TestRunCompoundAssignEmitsModify(t *testing.T) {
	_, rec, v := run(t, `int main(void) { int x; x = 1; x += 4; return x; }`, nil)
	if v != 5 {
		t.Errorf("x = %d", v)
	}
	// S(x=1), M(x+=4), L(return x).
	if got := rec.ops(); got != "SML" {
		t.Errorf("ops = %s, want SML", got)
	}
}

func TestRunIncrementDecrement(t *testing.T) {
	src := `int main(void) {
	int i, j, s;
	i = 3;
	j = i++;     // j=3 i=4
	s = ++i;     // s=5 i=5
	i--;
	--i;         // i=3
	return i*100 + j*10 + s;
}`
	_, rec, v := run(t, src, nil)
	if v != 335 {
		t.Errorf("got %d, want 335", v)
	}
	if c := strings.Count(rec.ops(), "M"); c != 4 {
		t.Errorf("modify events = %d, want 4 (%s)", c, rec.ops())
	}
}

func TestRunControlFlow(t *testing.T) {
	src := `int main(void) {
	int i, n;
	n = 0;
	for (i = 0; i < 10; i++) {
		if (i == 3) continue;
		if (i == 7) break;
		n = n + i;
	}
	while (n < 20) n++;
	do { n = n + 2; } while (n < 25);
	return n;
}`
	_, _, v := run(t, src, nil)
	// sum 0..6 minus 3 = 18; while → 20; do-while → 26.
	if v != 26 {
		t.Errorf("got %d, want 26", v)
	}
}

func TestRunTernaryAndLogical(t *testing.T) {
	src := `int main(void) {
	int a, b;
	a = 5; b = 0;
	if (a > 0 && b == 0) b = a > 3 ? 1 : 2;
	if (a < 0 || b == 1) b += 10;
	return b;
}`
	_, _, v := run(t, src, nil)
	if v != 11 {
		t.Errorf("got %d, want 11", v)
	}
}

func TestRunFloatArithmetic(t *testing.T) {
	src := `int main(void) {
	double d;
	d = 1.5;
	d = d * 4.0;   // 6.0
	return (int) d + (int) 0.75;
}`
	_, _, v := run(t, src, nil)
	if v != 6 {
		t.Errorf("got %d, want 6", v)
	}
}

func TestRunIntegerTruncation(t *testing.T) {
	src := `int main(void) {
	char c;
	unsigned char u;
	c = 300;   // wraps to 44
	u = 300;   // wraps to 44
	return c + u;
}`
	_, _, v := run(t, src, nil)
	if v != 88 {
		t.Errorf("got %d, want 88", v)
	}
}

func TestRunGlobalInitializer(t *testing.T) {
	_, rec, v := run(t, `int g = 41; int main(void) { return g + 1; }`, nil)
	if v != 42 {
		t.Errorf("got %d", v)
	}
	// Static init must not emit events; only the load in main.
	if rec.ops() != "L" {
		t.Errorf("ops = %s", rec.ops())
	}
}

func TestRunGleipnirMarkers(t *testing.T) {
	src := `int main(void) {
	GLEIPNIR_START_INSTRUMENTATION;
	GLEIPNIR_STOP_INSTRUMENTATION;
	return 0;
}`
	in, rec, _ := run(t, src, nil)
	if len(rec.instr) != 2 || !rec.instr[0] || rec.instr[1] {
		t.Errorf("instrument events = %v", rec.instr)
	}
	// START touches _zzq_result: a store then a load of the same 8 bytes.
	if rec.ops() != "SL" {
		t.Fatalf("ops = %s", rec.ops())
	}
	if rec.events[0].addr != rec.events[1].addr || rec.events[0].size != 8 {
		t.Errorf("zzq events = %+v", rec.events)
	}
	// The slot must be resolvable as _zzq_result.
	ref, ok := in.Syms.Describe(rec.events[0].addr, 0)
	if ok { // frame is gone after Run; lookup may fail, which is fine
		if ref.Sym.Name != "_zzq_result" {
			t.Errorf("zzq symbol = %q", ref.Sym.Name)
		}
	}
}

func TestRunMallocFreeAndRetyping(t *testing.T) {
	src := `int main(void) {
	double *p;
	p = malloc(8 * sizeof(double));
	p[2] = 1.5;
	free(p);
	return 0;
}`
	p := mustParse(t, src, nil)
	rec := &recorder{}
	in := NewInterp(p, rec)
	var describedAs string
	// Intercept: after the store to p[2], resolve its address.
	if _, err := in.Run(); err != nil {
		t.Fatal(err)
	}
	for _, e := range rec.events {
		if e.op == OpStore && e.size == 8 && memmodel.RegionOf(e.addr) == "heap" {
			// Block was freed, so symtab lookup fails now; but the event
			// address must be heap base + 16.
			if e.addr != memmodel.HeapBase+16 {
				t.Errorf("p[2] store at %#x", e.addr)
			}
			describedAs = "found"
		}
	}
	if describedAs == "" {
		t.Errorf("no heap store recorded: %+v", rec.events)
	}
}

func TestRunHeapDescribeWhileLive(t *testing.T) {
	src := `int main(void) {
	long *q;
	q = malloc(4 * sizeof(long));
	q[1] = 7;
	return (int) q[1];
}`
	p := mustParse(t, src, nil)
	rec := &recorder{}
	in := NewInterp(p, rec)
	if _, err := in.Run(); err != nil {
		t.Fatal(err)
	}
	ref, ok := in.Syms.Describe(memmodel.HeapBase+8, 0)
	if !ok {
		t.Fatal("heap block not described")
	}
	if !strings.HasPrefix(ref.Sym.Name, "heap_main_") {
		t.Errorf("heap symbol = %q", ref.Sym.Name)
	}
	if ref.Expr.Path.String() != "[1]" {
		t.Errorf("heap path = %q (retyping failed?)", ref.Expr.Path.String())
	}
}

func TestRunDoubleFreeFails(t *testing.T) {
	src := `int main(void) {
	int *p;
	p = malloc(4);
	free(p);
	free(p);
	return 0;
}`
	prog := mustParse(t, src, nil)
	if _, err := NewInterp(prog, nil).Run(); err == nil {
		t.Error("double free not detected")
	}
}

func TestRunStepLimit(t *testing.T) {
	prog := mustParse(t, `int main(void) { while (1) { } return 0; }`, nil)
	in := NewInterp(prog, nil)
	in.StepLimit = 1000
	_, err := in.Run()
	if err == nil || !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("err = %v, want ErrBudgetExceeded", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Limit != 1000 {
		t.Errorf("err = %#v, want *BudgetError{Limit: 1000}", err)
	}
}

func TestRunContextCancellation(t *testing.T) {
	prog := mustParse(t, `int main(void) { while (1) { } return 0; }`, nil)
	in := NewInterp(prog, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	in.SetContext(ctx)
	start := time.Now()
	_, err := in.Run()
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
}

func TestRunRuntimeErrors(t *testing.T) {
	cases := []string{
		`int main(void) { int x; x = 1/0; return x; }`,
		`int main(void) { int x; x = 1%0; return x; }`,
		`int main(void) { return missing(); }`,
		`int main(void) { return undefined_var; }`,
		`int main(void) { int *p; free(p); return 0; }`,
		`int main(void) { int x; x = malloc(-4) == 0; return 0; }`,
	}
	for _, src := range cases {
		prog, err := Parse(src, nil)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := NewInterp(prog, nil).Run(); err == nil {
			t.Errorf("Run(%q) unexpectedly succeeded", src)
		}
	}
}

func TestRunNestedCallsFrameDistance(t *testing.T) {
	// foo writes through a pointer into main's frame; the symbol's depth
	// must be recoverable for the tracer's frame-distance computation.
	src := `
void foo(int *p) { *p = 9; }
int main(void) {
	int x;
	x = 1;
	foo(&x);
	return x;
}`
	p := mustParse(t, src, nil)
	rec := &recorder{}
	in := NewInterp(p, rec)
	v, err := in.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v != 9 {
		t.Errorf("x = %d", v)
	}
	// Find the store executed by foo into main's x.
	var found bool
	for _, e := range rec.events {
		if e.fn == "foo" && e.op == OpStore && e.size == 4 && e.depth == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("no store by foo at depth 1: %+v", rec.events)
	}
}

func TestRunDefinesParameterise(t *testing.T) {
	src := `int main(void) {
	int a[LEN];
	for (int i=0; i<LEN; i++) a[i] = i;
	return a[LEN-1];
}`
	_, _, v := run(t, src, map[string]string{"LEN": "16"})
	if v != 15 {
		t.Errorf("got %d", v)
	}
}

func TestRunSizeofExpr(t *testing.T) {
	src := `int main(void) {
	double d[4];
	return sizeof(d) + sizeof(d[0]) + sizeof(int);
}`
	_, rec, v := run(t, src, nil)
	if v != 32+8+4 {
		t.Errorf("got %d", v)
	}
	// sizeof does not evaluate its operand: no loads at all.
	if rec.ops() != "" {
		t.Errorf("ops = %s", rec.ops())
	}
}

func TestRunShadowingInBlocks(t *testing.T) {
	src := `int main(void) {
	int x;
	x = 1;
	{
		int x;
		x = 100;
	}
	return x;
}`
	_, _, v := run(t, src, nil)
	if v != 1 {
		t.Errorf("got %d, want outer x=1", v)
	}
}

func TestRunForScopedDecl(t *testing.T) {
	src := `int main(void) {
	int s;
	s = 0;
	for (int i=0; i<3; i++) s += i;
	for (int i=0; i<3; i++) s += i;
	return s;
}`
	_, _, v := run(t, src, nil)
	if v != 6 {
		t.Errorf("got %d", v)
	}
}

func TestRunMultiDimArray(t *testing.T) {
	src := `int main(void) {
	int m[3][4];
	for (int i=0; i<3; i++)
		for (int j=0; j<4; j++)
			m[i][j] = i*10 + j;
	return m[2][3];
}`
	_, _, v := run(t, src, nil)
	if v != 23 {
		t.Errorf("got %d", v)
	}
}

func TestRunStructCopyThroughMembers(t *testing.T) {
	src := `
struct P { int x; int y; };
struct P a, b;
int main(void) {
	a.x = 3; a.y = 4;
	b.x = a.x; b.y = a.y;
	return b.x * b.y;
}`
	_, _, v := run(t, src, nil)
	if v != 12 {
		t.Errorf("got %d", v)
	}
}

func ExampleInterp() {
	prog, _ := Parse(`int g; int main(void) { g = 7; return g; }`, nil)
	in := NewInterp(prog, nil)
	v, _ := in.Run()
	fmt.Println(v)
	// Output: 7
}
