// Package minic implements an interpreter for the C subset used by the
// paper's example programs (Listings 1, 3, 4, 6, 7, 9 and 10). It stands in
// for the Valgrind + Gleipnir instrumentation stack: executing a program
// produces the same stream of annotated data accesses that Gleipnir records
// from a natively compiled binary — one Load/Store/Modify event per variable
// access, attributed to the executing function and laid out by the C ABI
// rules in ctype and the address-space conventions in memmodel.
//
// Supported language: typedef/struct declarations, global and local
// variables (with initializers), arrays, pointers (including -> access and
// pointer arithmetic), for/while/do/if/else/break/continue/return, the usual
// arithmetic/relational/logical operators, ++/--, compound assignment,
// sizeof, casts, #define object macros, malloc/free, and the
// GLEIPNIR_START_INSTRUMENTATION / GLEIPNIR_STOP_INSTRUMENTATION markers.
package minic

import (
	"fmt"
	"strings"
)

// TokKind classifies a lexical token.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokFloat
	TokChar   // character literal, value in Tok.Int
	TokString // string literal, text in Tok.Text (without quotes)
	TokPunct
)

// Tok is one lexical token.
type Tok struct {
	Kind TokKind
	Text string // identifier text, punctuation spelling, or string body
	Int  int64  // integer / char value
	Fl   float64
	Line int
}

// String renders the token for error messages.
func (t Tok) String() string {
	switch t.Kind {
	case TokEOF:
		return "EOF"
	case TokInt:
		return fmt.Sprintf("%d", t.Int)
	case TokFloat:
		return fmt.Sprintf("%g", t.Fl)
	case TokString:
		return fmt.Sprintf("%q", t.Text)
	}
	return t.Text
}

// multi-character punctuation, longest first.
var punct2 = []string{
	"<<=", ">>=", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
	"&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
}

type lexer struct {
	src     string
	pos     int
	line    int
	defines map[string][]Tok // object-like macros
	out     []Tok
	err     error
}

// Lex tokenises src, applying #define object macros and the user-supplied
// definitions (each value is lexed as a replacement token list).
func Lex(src string, defines map[string]string) ([]Tok, error) {
	lx := &lexer{src: src, line: 1, defines: map[string][]Tok{}}
	for name, val := range defines {
		toks, err := lexRaw(val)
		if err != nil {
			return nil, fmt.Errorf("minic: bad define %s=%q: %v", name, val, err)
		}
		lx.defines[name] = toks
	}
	if err := lx.run(); err != nil {
		return nil, err
	}
	return lx.out, nil
}

// lexRaw tokenises without preprocessing (used for macro bodies).
func lexRaw(src string) ([]Tok, error) {
	lx := &lexer{src: src, line: 1, defines: map[string][]Tok{}}
	if err := lx.run(); err != nil {
		return nil, err
	}
	return lx.out[:len(lx.out)-1], nil // strip EOF
}

func (lx *lexer) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("minic: line %d: %s", lx.line, fmt.Sprintf(format, args...))
}

func (lx *lexer) run() error {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '#':
			if err := lx.directive(); err != nil {
				return err
			}
		case c == '/' && lx.peekAt(1) == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.peekAt(1) == '*':
			if err := lx.blockComment(); err != nil {
				return err
			}
		case isIdentStart(c):
			lx.ident()
		case c >= '0' && c <= '9':
			if err := lx.number(); err != nil {
				return err
			}
		case c == '\'':
			if err := lx.charLit(); err != nil {
				return err
			}
		case c == '"':
			if err := lx.stringLit(); err != nil {
				return err
			}
		default:
			if !lx.punct() {
				return lx.errorf("unexpected character %q", c)
			}
		}
	}
	lx.out = append(lx.out, Tok{Kind: TokEOF, Line: lx.line})
	return nil
}

func (lx *lexer) peekAt(off int) byte {
	if lx.pos+off < len(lx.src) {
		return lx.src[lx.pos+off]
	}
	return 0
}

func (lx *lexer) blockComment() error {
	end := strings.Index(lx.src[lx.pos+2:], "*/")
	if end < 0 {
		return lx.errorf("unterminated block comment")
	}
	lx.line += strings.Count(lx.src[lx.pos:lx.pos+2+end+2], "\n")
	lx.pos += 2 + end + 2
	return nil
}

// directive handles #define NAME <tokens> and ignores #include / #pragma.
func (lx *lexer) directive() error {
	eol := strings.IndexByte(lx.src[lx.pos:], '\n')
	var lineText string
	if eol < 0 {
		lineText = lx.src[lx.pos:]
		lx.pos = len(lx.src)
	} else {
		lineText = lx.src[lx.pos : lx.pos+eol]
		lx.pos += eol // leave the \n for the main loop to count
	}
	fields := strings.Fields(lineText)
	if len(fields) == 0 {
		return lx.errorf("empty preprocessor directive")
	}
	switch fields[0] {
	case "#define":
		if len(fields) < 2 {
			return lx.errorf("#define without a name")
		}
		name := fields[1]
		if strings.Contains(name, "(") {
			return lx.errorf("function-like macro %s not supported", name)
		}
		body := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(lineText, "#define"), " "))
		body = strings.TrimSpace(strings.TrimPrefix(body, name))
		toks, err := lexRaw(body)
		if err != nil {
			return lx.errorf("bad macro body for %s: %v", name, err)
		}
		lx.defines[name] = toks
		return nil
	case "#include", "#pragma", "#ifdef", "#ifndef", "#endif", "#undef":
		return nil // tolerated and ignored
	default:
		return lx.errorf("unsupported directive %s", fields[0])
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func (lx *lexer) ident() {
	start := lx.pos
	for lx.pos < len(lx.src) && isIdentCont(lx.src[lx.pos]) {
		lx.pos++
	}
	name := lx.src[start:lx.pos]
	if body, ok := lx.defines[name]; ok {
		for _, t := range body {
			t.Line = lx.line
			lx.out = append(lx.out, t)
		}
		return
	}
	lx.out = append(lx.out, Tok{Kind: TokIdent, Text: name, Line: lx.line})
}

func (lx *lexer) number() error {
	start := lx.pos
	isFloat := false
	if lx.src[lx.pos] == '0' && (lx.peekAt(1) == 'x' || lx.peekAt(1) == 'X') {
		lx.pos += 2
		for lx.pos < len(lx.src) && isHexDigit(lx.src[lx.pos]) {
			lx.pos++
		}
	} else {
		for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
			lx.pos++
		}
		if lx.pos < len(lx.src) && lx.src[lx.pos] == '.' {
			isFloat = true
			lx.pos++
			for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
				lx.pos++
			}
		}
	}
	text := lx.src[start:lx.pos]
	// Skip integer suffixes (U, L, UL, ...).
	for lx.pos < len(lx.src) && (lx.src[lx.pos] == 'u' || lx.src[lx.pos] == 'U' ||
		lx.src[lx.pos] == 'l' || lx.src[lx.pos] == 'L' || lx.src[lx.pos] == 'f' || lx.src[lx.pos] == 'F') {
		if lx.src[lx.pos] == 'f' || lx.src[lx.pos] == 'F' {
			isFloat = true
		}
		lx.pos++
	}
	if isFloat {
		var f float64
		if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
			return lx.errorf("bad float literal %q", text)
		}
		lx.out = append(lx.out, Tok{Kind: TokFloat, Fl: f, Text: text, Line: lx.line})
		return nil
	}
	var v int64
	var err error
	if strings.HasPrefix(text, "0x") || strings.HasPrefix(text, "0X") {
		_, err = fmt.Sscanf(text, "%v", &v)
	} else {
		_, err = fmt.Sscanf(text, "%d", &v)
	}
	if err != nil {
		return lx.errorf("bad integer literal %q", text)
	}
	lx.out = append(lx.out, Tok{Kind: TokInt, Int: v, Text: text, Line: lx.line})
	return nil
}

func isHexDigit(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (lx *lexer) charLit() error {
	lx.pos++ // opening quote
	if lx.pos >= len(lx.src) {
		return lx.errorf("unterminated character literal")
	}
	var v int64
	if lx.src[lx.pos] == '\\' {
		lx.pos++
		if lx.pos >= len(lx.src) {
			return lx.errorf("unterminated escape")
		}
		switch lx.src[lx.pos] {
		case 'n':
			v = '\n'
		case 't':
			v = '\t'
		case '0':
			v = 0
		case '\\':
			v = '\\'
		case '\'':
			v = '\''
		default:
			return lx.errorf("unsupported escape \\%c", lx.src[lx.pos])
		}
	} else {
		v = int64(lx.src[lx.pos])
	}
	lx.pos++
	if lx.pos >= len(lx.src) || lx.src[lx.pos] != '\'' {
		return lx.errorf("unterminated character literal")
	}
	lx.pos++
	lx.out = append(lx.out, Tok{Kind: TokChar, Int: v, Line: lx.line})
	return nil
}

func (lx *lexer) stringLit() error {
	lx.pos++
	start := lx.pos
	for lx.pos < len(lx.src) && lx.src[lx.pos] != '"' {
		if lx.src[lx.pos] == '\n' {
			return lx.errorf("newline in string literal")
		}
		lx.pos++
	}
	if lx.pos >= len(lx.src) {
		return lx.errorf("unterminated string literal")
	}
	lx.out = append(lx.out, Tok{Kind: TokString, Text: lx.src[start:lx.pos], Line: lx.line})
	lx.pos++
	return nil
}

func (lx *lexer) punct() bool {
	for _, p := range punct2 {
		if strings.HasPrefix(lx.src[lx.pos:], p) {
			lx.out = append(lx.out, Tok{Kind: TokPunct, Text: p, Line: lx.line})
			lx.pos += len(p)
			return true
		}
	}
	c := lx.src[lx.pos]
	if strings.IndexByte("+-*/%<>=!&|^~()[]{};,.?:", c) >= 0 {
		lx.out = append(lx.out, Tok{Kind: TokPunct, Text: string(c), Line: lx.line})
		lx.pos++
		return true
	}
	return false
}
