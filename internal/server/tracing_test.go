package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"tracedst/internal/telemetry"
	"tracedst/internal/workloads"
)

// submitTraced POSTs body with extra headers and decodes the job view.
func submitTraced(t *testing.T, base, query string, body []byte, headers map[string]string) (jobView, *http.Response) {
	t.Helper()
	req, err := http.NewRequest("POST", base+"/jobs"+query, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %d: %s", resp.StatusCode, data)
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v, resp
}

// TestJobTraceEndToEnd is the tentpole acceptance check: one upload's
// trace ID must appear on every stage span of its pipeline run, the
// spans must chain into a tree rooted at server.job, and the job must
// carry resource accounting.
func TestJobTraceEndToEnd(t *testing.T) {
	exp := telemetry.NewSpanExporter("")
	_, ts, _ := newTestServer(t, func(c *Config) { c.Exporter = exp })
	upload := encodeGLB(t, workloadRecords(5000), 256)

	v, _ := submitTraced(t, ts.URL, "?wait=1&rule="+url.QueryEscape(workloads.RuleTrans1), upload,
		map[string]string{"X-Request-ID": "req-e2e-1"})
	if v.State != StateDone {
		t.Fatalf("job state %s (%s)", v.State, v.Error)
	}
	wantTrace := telemetry.DeriveTraceID("req-e2e-1").String()
	if v.TraceID != wantTrace {
		t.Fatalf("trace_id %s, want derived %s", v.TraceID, wantTrace)
	}
	if v.Resources == nil {
		t.Fatal("job has no resource accounting")
	}
	if v.Resources.BytesIn != int64(len(upload)) {
		t.Fatalf("resources.bytes_in %d, want %d", v.Resources.BytesIn, len(upload))
	}
	if v.Resources.Records <= 0 || v.Resources.WallNS <= 0 {
		t.Fatalf("resources not accounted: %+v", v.Resources)
	}
	if v.Resources.HeapPeakBytes < v.Resources.HeapStartBytes {
		t.Fatalf("heap peak %d below start %d", v.Resources.HeapPeakBytes, v.Resources.HeapStartBytes)
	}

	events := exp.Events()
	byName := map[string]telemetry.SpanEvent{}
	for _, ev := range events {
		if ev.Trace != wantTrace {
			t.Fatalf("span %s carries trace %s, want %s", ev.Name, ev.Trace, wantTrace)
		}
		if ev.Attrs["job"] != v.ID {
			t.Fatalf("span %s: job attr %q, want %q", ev.Name, ev.Attrs["job"], v.ID)
		}
		byName[ev.Name] = ev
	}
	for _, name := range []string{"server.job", "validate.trace", "trace.decode.stream", "xform.stream", "dinero.simulate"} {
		if _, ok := byName[name]; !ok {
			names := make([]string, 0, len(events))
			for _, ev := range events {
				names = append(names, ev.Name)
			}
			t.Fatalf("no %s span in export (have %v)", name, names)
		}
	}
	root := byName["server.job"]
	if root.Parent != "" {
		t.Fatalf("server.job should be the root, has parent %s", root.Parent)
	}
	for _, name := range []string{"validate.trace", "trace.decode.stream", "xform.stream"} {
		if byName[name].Parent != root.Span {
			t.Fatalf("%s parent %s, want server.job %s", name, byName[name].Parent, root.Span)
		}
	}
	if byName["dinero.simulate"].Parent != byName["xform.stream"].Span {
		t.Fatalf("dinero.simulate parent %s, want xform.stream %s",
			byName["dinero.simulate"].Parent, byName["xform.stream"].Span)
	}
	if root.Attrs["state"] != string(StateDone) {
		t.Fatalf("root state attr %q", root.Attrs["state"])
	}
}

func TestSubmitTraceparentJoinsCallerTrace(t *testing.T) {
	exp := telemetry.NewSpanExporter("")
	_, ts, _ := newTestServer(t, func(c *Config) { c.Exporter = exp })
	upload := encodeGLB(t, workloadRecords(500), 128)

	const parentTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	const parentSpan = "00f067aa0ba902b7"
	v, resp := submitTraced(t, ts.URL, "?wait=1", upload,
		map[string]string{"traceparent": "00-" + parentTrace + "-" + parentSpan + "-01"})
	if v.TraceID != parentTrace {
		t.Fatalf("trace_id %s, want caller's %s", v.TraceID, parentTrace)
	}
	if v.ParentSpan != parentSpan {
		t.Fatalf("parent_span %s, want %s", v.ParentSpan, parentSpan)
	}
	if got := resp.Header.Get("X-Trace-ID"); got != parentTrace {
		t.Fatalf("X-Trace-ID header %q", got)
	}
	for _, ev := range exp.Events() {
		if ev.Name == "server.job" && ev.Parent != parentSpan {
			t.Fatalf("server.job parent %s, want remote %s", ev.Parent, parentSpan)
		}
	}
}

func TestSubmitAssignsFreshTraceID(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)
	upload := encodeGLB(t, workloadRecords(100), 64)
	v1, _ := submitTraced(t, ts.URL, "", upload, nil)
	v2, _ := submitTraced(t, ts.URL, "", upload, nil)
	if v1.TraceID == "" || v2.TraceID == "" {
		t.Fatal("jobs missing trace IDs")
	}
	if v1.TraceID == v2.TraceID {
		t.Fatal("two jobs share a trace ID")
	}
}

func TestMetricsPrometheusNegotiation(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)

	get := func(url, accept string) (string, string) {
		req, _ := http.NewRequest("GET", url, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return string(data), resp.Header.Get("Content-Type")
	}

	// Default (and curl's */*) stays JSON.
	body, ctype := get(ts.URL+"/metrics", "*/*")
	if !strings.Contains(ctype, "application/json") {
		t.Fatalf("default content type %q", ctype)
	}
	if !json.Valid([]byte(body)) {
		t.Fatal("default /metrics is not JSON")
	}

	// ?format=prom forces the exposition.
	body, ctype = get(ts.URL+"/metrics?format=prom", "")
	if ctype != telemetry.PromContentType {
		t.Fatalf("prom content type %q", ctype)
	}
	if !strings.Contains(body, `tracedst_up{tool="tracedstd"} 1`) {
		t.Fatalf("prom body missing up metric:\n%s", body)
	}

	// An Accept asking for text/plain opts in without the query param.
	body, ctype = get(ts.URL+"/metrics", "text/plain")
	if ctype != telemetry.PromContentType || !strings.Contains(body, "tracedst_up") {
		t.Fatalf("Accept text/plain: content type %q", ctype)
	}

	// ?format=json wins over any Accept.
	_, ctype = get(ts.URL+"/metrics?format=json", "text/plain")
	if !strings.Contains(ctype, "application/json") {
		t.Fatalf("format=json content type %q", ctype)
	}
}

func TestReportJSONFormat(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)
	upload := encodeGLB(t, workloadRecords(500), 128)
	v, _ := submitTraced(t, ts.URL, "?wait=1", upload, map[string]string{"X-Request-ID": "req-json"})
	if v.State != StateDone {
		t.Fatalf("job state %s", v.State)
	}

	resp, err := http.Get(ts.URL + "/jobs/" + v.ID + "/report?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); !strings.Contains(got, "application/json") {
		t.Fatalf("content type %q", got)
	}
	var rec Job
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.Report == "" {
		t.Fatal("JSON report missing report text")
	}
	if rec.TraceID != telemetry.DeriveTraceID("req-json").String() {
		t.Fatalf("JSON report trace_id %q", rec.TraceID)
	}
	if rec.Resources == nil || rec.Resources.Records != rec.Records {
		t.Fatalf("JSON report resources %+v, records %d", rec.Resources, rec.Records)
	}

	// The plain-text default is unchanged.
	resp2, err := http.Get(ts.URL + "/jobs/" + v.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	data, _ := io.ReadAll(resp2.Body)
	if !strings.Contains(resp2.Header.Get("Content-Type"), "text/plain") || len(data) == 0 {
		t.Fatal("plain report broken")
	}
	if string(data) != rec.Report {
		t.Fatal("plain and JSON report text differ")
	}
}

func TestPprofMountGated(t *testing.T) {
	_, tsOff, _ := newTestServer(t, nil)
	resp, err := http.Get(tsOff.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof reachable without EnablePprof: %d", resp.StatusCode)
	}

	_, tsOn, _ := newTestServer(t, func(c *Config) { c.EnablePprof = true })
	resp, err = http.Get(tsOn.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof not served with EnablePprof: %d", resp.StatusCode)
	}
}
