package server

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"tracedst/internal/cache"
	"tracedst/internal/faultinject"
	"tracedst/internal/telemetry"
	"tracedst/internal/trace"
)

// TestOversizeBodyRejected: a body over MaxBodyBytes gets 413 and leaves
// no job or spool file behind.
func TestOversizeBodyRejected(t *testing.T) {
	_, ts, reg := newTestServer(t, func(c *Config) { c.MaxBodyBytes = 1024 })
	big := encodeGLB(t, workloadRecords(5000), 64)
	if len(big) <= 1024 {
		t.Fatalf("test trace only %d bytes", len(big))
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/octet-stream", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	if n := reg.Counter("server.rejected_size").Value(); n != 1 {
		t.Errorf("server.rejected_size = %d, want 1", n)
	}
	if n := reg.Counter("server.uploads").Value(); n != 0 {
		t.Errorf("oversize upload was admitted (uploads = %d)", n)
	}
}

// TestRateLimit429: a client over its token budget gets 429 with a
// Retry-After, and recovers once the bucket refills.
func TestRateLimit429(t *testing.T) {
	clock := time.Unix(1700000000, 0)
	_, ts, reg := newTestServer(t, func(c *Config) {
		c.RatePerSec = 2
		c.Burst = 3
		c.now = func() time.Time { return clock }
	})
	glb := encodeGLB(t, workloadRecords(50), 16)

	for i := 0; i < 3; i++ {
		v := submit(t, ts.URL, "", glb)
		if v.ID == "" {
			t.Fatalf("burst submission %d rejected", i)
		}
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/octet-stream", bytes.NewReader(glb))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if n := reg.Counter("server.rejected_rate").Value(); n != 1 {
		t.Errorf("server.rejected_rate = %d, want 1", n)
	}

	// A different client has its own bucket.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/jobs", bytes.NewReader(glb))
	req.Header.Set("X-Client-ID", "other")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted {
		t.Errorf("fresh client: status %d, want 202", resp2.StatusCode)
	}

	// Half a second at 2 tokens/s refills one token.
	clock = clock.Add(time.Second / 2)
	resp3, err := http.Post(ts.URL+"/jobs", "application/octet-stream", bytes.NewReader(glb))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusAccepted {
		t.Errorf("after refill: status %d, want 202", resp3.StatusCode)
	}
}

// TestQueueFull503: with one slow worker and a one-slot queue, a third
// concurrent job is shed with 503 instead of queued unboundedly.
func TestQueueFull503(t *testing.T) {
	_, ts, reg := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 1
		c.Throttle = 25 * time.Millisecond
	})
	glb := encodeGLB(t, workloadRecords(4000), 32)

	running := submit(t, ts.URL, "", glb)
	waitState(t, ts.URL, running.ID, StateRunning) // worker busy, queue empty
	submit(t, ts.URL, "", glb)                     // fills the single slot

	resp, err := http.Post(ts.URL+"/jobs", "application/octet-stream", bytes.NewReader(glb))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if reg.Counter("server.rejected_queue").Value() == 0 {
		t.Error("server.rejected_queue never incremented")
	}
}

// TestSlowLorisBody: an upload trickling in slower than BodyTimeout is
// cut off and rejected rather than pinning a handler forever.
func TestSlowLorisBody(t *testing.T) {
	_, ts, reg := newTestServer(t, func(c *Config) { c.BodyTimeout = 150 * time.Millisecond })
	glb := encodeGLB(t, workloadRecords(2000), 64)
	// ~40ms per 16-byte chunk: the body would need tens of seconds.
	body := faultinject.SlowBody(glb, 16, 40*time.Millisecond)

	start := time.Now()
	resp, err := http.Post(ts.URL+"/jobs", "application/octet-stream", body)
	if err == nil {
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("slow-loris got status %d, want 400 (or a killed connection)", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("slow-loris held the handler %v", elapsed)
	}
	if n := reg.Counter("server.rejected_body").Value(); n != 1 {
		t.Errorf("server.rejected_body = %d, want 1", n)
	}
	if n := reg.Counter("server.uploads").Value(); n != 0 {
		t.Errorf("slow-loris upload was admitted (uploads = %d)", n)
	}
}

// TestTruncatedUpload: a client that declares a Content-Length and sends
// less, then half-closes, must be rejected without admitting a job.
func TestTruncatedUpload(t *testing.T) {
	_, ts, reg := newTestServer(t, nil)
	glb := encodeGLB(t, workloadRecords(2000), 64)
	addr := strings.TrimPrefix(ts.URL, "http://")

	code, err := faultinject.PostTruncated(addr, "/jobs", "application/octet-stream", glb, len(glb)/3)
	if err != nil {
		t.Fatal(err)
	}
	// 400 if the server answered; 0 if it hung up on the liar. Both are
	// acceptable — admitting the job is not.
	if code != 0 && code != http.StatusBadRequest {
		t.Errorf("truncated upload got status %d, want 400 or connection drop", code)
	}
	if n := reg.Counter("server.uploads").Value(); n != 0 {
		t.Errorf("truncated upload was admitted (uploads = %d)", n)
	}
	if n := reg.Counter("server.rejected_body").Value(); n != 1 {
		t.Errorf("server.rejected_body = %d, want 1", n)
	}
}

// TestAbortMidStream: a body reader that dies mid-upload must not admit
// a job or wedge the handler.
func TestAbortMidStream(t *testing.T) {
	_, ts, reg := newTestServer(t, nil)
	glb := encodeGLB(t, workloadRecords(2000), 64)
	resp, err := http.Post(ts.URL+"/jobs", "application/octet-stream", faultinject.AbortBody(glb, len(glb)/2))
	if err == nil {
		// The transport may surface the server's 400 instead of the local
		// read error, depending on timing.
		resp.Body.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for reg.Counter("server.rejected_body").Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := reg.Counter("server.uploads").Value(); n != 0 {
		t.Errorf("aborted upload was admitted (uploads = %d)", n)
	}
	if n := reg.Counter("server.rejected_body").Value(); n != 1 {
		t.Errorf("server.rejected_body = %d, want 1", n)
	}
}

// TestDrainingRejectsSubmissions: once Shutdown begins, POST /jobs gets
// 503 + Retry-After and /readyz flips to 503.
func TestDrainingRejectsSubmissions(t *testing.T) {
	srv, ts, reg := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.Throttle = 25 * time.Millisecond
	})
	glb := encodeGLB(t, workloadRecords(4000), 32)
	v := submit(t, ts.URL, "", glb)
	waitState(t, ts.URL, v.ID, StateRunning)

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- srv.Shutdown(ctx)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for !srv.isDraining() && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/jobs", "application/octet-stream", bytes.NewReader(glb))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining 503 without Retry-After")
	}
	if reg.Counter("server.rejected_drain").Value() == 0 {
		t.Error("server.rejected_drain never incremented")
	}
	rresp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining: status %d, want 503", rresp.StatusCode)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestConcurrentOverloadShedsCleanly is the fault-injection acceptance
// test: a burst of concurrent uploads against one slow worker and a tiny
// queue must split cleanly into 202s and 503s (nothing hangs, nothing
// 5xxs unexpectedly), every admitted job must reach a terminal state,
// and after a full drain no job goroutines may linger.
func TestConcurrentOverloadShedsCleanly(t *testing.T) {
	before := runtime.NumGoroutine()
	reg := telemetry.NewRegistry()
	srv, err := New(Config{
		StateDir:   t.TempDir(),
		Workers:    2,
		QueueDepth: 2,
		RatePerSec: -1,
		Reg:        reg,
		Throttle:   5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	glb := encodeGLB(t, workloadRecords(1000), 64)
	const clients = 16
	codes := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/jobs", "application/octet-stream", bytes.NewReader(glb))
			if err != nil {
				codes[i] = -1
				return
			}
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()

	var accepted, shed int
	for i, code := range codes {
		switch code {
		case http.StatusAccepted:
			accepted++
		case http.StatusServiceUnavailable:
			shed++
		default:
			t.Errorf("client %d: status %d, want 202 or 503", i, code)
		}
	}
	if accepted == 0 {
		t.Error("overload shed every request; admission control is a wall, not a valve")
	}
	if shed == 0 {
		t.Error("16 concurrent uploads against queue depth 2 shed nothing")
	}
	t.Logf("overload: %d accepted, %d shed", accepted, shed)

	// Every admitted job finishes; nothing is stuck.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if reg.Counter("server.jobs_done").Value() == int64(accepted) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d admitted jobs finished", reg.Counter("server.jobs_done").Value(), accepted)
		}
		time.Sleep(10 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.Close()

	// Leak check: allow the HTTP machinery a moment to wind down, then
	// demand the goroutine count returns to (near) the baseline.
	var after int
	for i := 0; i < 100; i++ {
		runtime.GC()
		after = runtime.NumGoroutine()
		if after <= before+2 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if after > before+2 {
		buf := make([]byte, 1<<16)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutines leaked: %d before, %d after drain\n%s", before, after, buf[:n])
	}
}

// TestChaosSweep runs every upload-side corruption class the package
// knows (text corruptors and .glb footer damage) through the server:
// none may crash it, and every response must be a deliberate one — an
// admitted job that ends terminal, or a clean 4xx.
func TestChaosSweep(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)
	recs := workloadRecords(500)
	glb := encodeGLB(t, recs, 64)

	// An indexed .glb, so the footer corruption classes have a footer to
	// damage.
	var ibuf bytes.Buffer
	ibw := trace.NewBinaryWriter(&ibuf)
	ibw.EnableIndex()
	ibw.SetBlockRecords(64)
	if err := ibw.WriteHeader(trace.Header{PID: 7}); err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := ibw.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := ibw.Flush(); err != nil {
		t.Fatal(err)
	}
	indexed := ibuf.Bytes()

	// Footer damage is survivable by design: decode falls back to a scan
	// and the job completes with a warning.
	for _, class := range faultinject.GLBFooterClasses() {
		t.Run("glb-"+class.Name, func(t *testing.T) {
			data := class.Apply(append([]byte(nil), indexed...))
			if bytes.Equal(data, indexed) {
				t.Fatal("corruption class left the trace unchanged")
			}
			v := submit(t, ts.URL, "?wait=1", data)
			if v.State != StateDone {
				t.Fatalf("footer-damaged upload ended %s: %s", v.State, v.Error)
			}
			if v.Warnings == 0 {
				t.Error("footer damage produced no validator warning")
			}
			if got, want := fetchReport(t, ts.URL, v.ID), refReport(t, recs, cache.Paper32KDirect()); got != want {
				t.Error("footer-damaged trace simulated differently from the clean one")
			}
		})
	}

	// Structural damage fails the job with a validation error — never a
	// hung job, never a dead server.
	var textBuf bytes.Buffer
	tw := trace.NewWriter(&textBuf)
	if err := tw.WriteHeader(trace.Header{PID: 7}); err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := tw.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	text := textBuf.String()
	damaged := []struct {
		name string
		data []byte
	}{
		{"mid-line-truncation", []byte(faultinject.Truncate(text, 0.5))},
		{"op-bit-rot", []byte(faultinject.BitFlipOps(text, 5, 3))},
		{"garbage-interleave", []byte(faultinject.InterleaveGarbage(text, 7, 40))},
		{"corrupt-header", []byte(faultinject.CorruptHeader(text))},
		{"torn-glb-block", glb[:len(glb)*2/3]},
	}
	for _, d := range damaged {
		t.Run(d.name, func(t *testing.T) {
			v := submit(t, ts.URL, "?wait=1", d.data)
			if !v.State.terminal() {
				t.Fatalf("damaged upload left job in %s", v.State)
			}
		})
	}
}
