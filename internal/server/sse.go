package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// handleEvents streams a job's lifecycle over Server-Sent Events: a
// "state" event whenever the job's observable view changes (state
// transition or progress), plus comment heartbeats so proxies and
// clients can tell a quiet stream from a dead one. The stream ends when
// the job reaches a terminal state, the client goes away, or the server
// drains.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	// Poll fast enough to feel live but bounded either way; heartbeats
	// ride the same ticker.
	poll := s.cfg.Heartbeat / 4
	if poll > 250*time.Millisecond {
		poll = 250 * time.Millisecond
	}
	if poll < 50*time.Millisecond {
		poll = 50 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()

	var last []byte
	lastBeat := time.Now()
	emit := func() (terminal bool) {
		v := j.view()
		buf, err := json.Marshal(v)
		if err != nil {
			return true
		}
		if string(buf) != string(last) {
			fmt.Fprintf(w, "event: state\ndata: %s\n\n", buf)
			fl.Flush()
			last = buf
			lastBeat = time.Now()
		} else if time.Since(lastBeat) >= s.cfg.Heartbeat {
			// SSE comment line: ignored by EventSource, keeps the
			// connection demonstrably alive.
			fmt.Fprint(w, ": heartbeat\n\n")
			fl.Flush()
			s.reg.Counter("server.sse_heartbeats").Inc()
			lastBeat = time.Now()
		}
		return v.State.terminal()
	}

	if emit() {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.baseCtx.Done():
			fmt.Fprint(w, "event: drain\ndata: {\"reason\":\"server draining\"}\n\n")
			fl.Flush()
			return
		case <-j.done:
			emit()
			return
		case <-ticker.C:
			if emit() {
				return
			}
		}
	}
}
