package server

import (
	"bytes"
	"net/url"
	"testing"
	"time"

	"tracedst/internal/cache"
	"tracedst/internal/dinero"
	"tracedst/internal/trace"
	"tracedst/internal/workloads"
)

// encodeIndexedGLB renders records to a .glb with the block-index footer
// (the cheap content-hash path, and the sharded job engine's input).
func encodeIndexedGLB(t *testing.T, recs []trace.Record, blockRecs int) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw := trace.NewBinaryWriter(&buf)
	bw.EnableIndex()
	bw.SetBlockRecords(blockRecs)
	if err := bw.WriteHeader(trace.Header{PID: 7}); err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := bw.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDuplicateUploadCached: a second identical upload completes from the
// result cache — cached:true, the exact report bytes of the first run,
// no new trace walk — while a different config on the same trace misses.
func TestDuplicateUploadCached(t *testing.T) {
	_, ts, reg := newTestServer(t, nil)
	recs := workloadRecords(3000)
	glb := encodeGLB(t, recs, 64)

	v1 := submit(t, ts.URL, "?wait=1", glb)
	done1 := waitState(t, ts.URL, v1.ID, StateDone)
	if done1.Cached {
		t.Fatal("first upload claims cached")
	}
	rep1 := fetchReport(t, ts.URL, v1.ID)
	if want := refReport(t, recs, cache.Paper32KDirect()); rep1 != want {
		t.Fatalf("first report diverges from direct simulation")
	}
	if got := reg.Counter("simcache.misses").Value(); got != 1 {
		t.Errorf("after first job: simcache.misses = %d, want 1", got)
	}
	if got := reg.Counter("simcache.puts").Value(); got != 1 {
		t.Errorf("after first job: simcache.puts = %d, want 1", got)
	}
	simulated := reg.Counter("server.records_simulated").Value()

	v2 := submit(t, ts.URL, "?wait=1", glb)
	done2 := waitState(t, ts.URL, v2.ID, StateDone)
	if !done2.Cached {
		t.Error("duplicate upload not served from the result cache")
	}
	if done2.Records != done1.Records || done2.Warnings != done1.Warnings || done2.BadLines != done1.BadLines {
		t.Errorf("cached job diagnostics diverge: %+v vs %+v", done2.Job, done1.Job)
	}
	if rep2 := fetchReport(t, ts.URL, v2.ID); rep2 != rep1 {
		t.Errorf("cached report differs from the original:\n--- first ---\n%s\n--- cached ---\n%s", rep1, rep2)
	}
	if got := reg.Counter("simcache.hits").Value(); got != 1 {
		t.Errorf("simcache.hits = %d, want 1", got)
	}
	if got := reg.Counter("server.jobs_cached").Value(); got != 1 {
		t.Errorf("server.jobs_cached = %d, want 1", got)
	}
	if got := reg.Counter("server.records_simulated").Value(); got != simulated {
		t.Errorf("cached job re-simulated records: counter went %d -> %d", simulated, got)
	}
	if l, h, m := reg.Counter("simcache.lookups").Value(), reg.Counter("simcache.hits").Value(),
		reg.Counter("simcache.misses").Value(); l != h+m {
		t.Errorf("simcache.lookups %d != hits %d + misses %d", l, h, m)
	}

	// Same trace, different geometry: a distinct key, so a fresh run.
	v3 := submit(t, ts.URL, "?wait=1&config=size%3D1k%2Cassoc%3D2", glb)
	if done3 := waitState(t, ts.URL, v3.ID, StateDone); done3.Cached {
		t.Error("different config hit the cache")
	}
}

// TestThrottledServerBypassesCache: Throttle exists to hold jobs in
// flight (drain testing); answering from the cache would defeat it, so
// duplicates re-run.
func TestThrottledServerBypassesCache(t *testing.T) {
	_, ts, reg := newTestServer(t, func(c *Config) { c.Throttle = time.Millisecond })
	glb := encodeGLB(t, workloadRecords(300), 64)
	for i := 0; i < 2; i++ {
		v := submit(t, ts.URL, "?wait=1", glb)
		if done := waitState(t, ts.URL, v.ID, StateDone); done.Cached {
			t.Fatal("throttled server served a cached job")
		}
	}
	if got := reg.Counter("simcache.lookups").Value(); got != 0 {
		t.Errorf("throttled server consulted the cache %d times", got)
	}
}

// TestJobShardsReport: with -job-shards, an indexed binary upload is
// simulated on N parallel cold shards and the report equals the sharded
// library engine's (itself pinned byte-identical to a flush-at-boundary
// serial run); the result still lands in the cache under the sharded
// tier, so a duplicate is answered without re-running, and the serial
// tier stays separate.
func TestJobShardsReport(t *testing.T) {
	const shards = 4
	_, ts, reg := newTestServer(t, func(c *Config) { c.JobShards = shards })
	recs := workloadRecords(5000)
	glb := encodeIndexedGLB(t, recs, 64)

	v := submit(t, ts.URL, "?wait=1", glb)
	done := waitState(t, ts.URL, v.ID, StateDone)
	if done.Cached {
		t.Fatal("first sharded upload claims cached")
	}
	got := fetchReport(t, ts.URL, v.ID)

	tr, err := trace.NewIndexedBytes(glb)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dinero.SimulateSharded(tr, dinero.Options{L1: cache.Paper32KDirect()}, shards, trace.DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if want := res.Sim.Report(); got != want {
		t.Errorf("sharded job report diverges from the sharded engine:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	if done.Records != int64(len(recs)) {
		t.Errorf("sharded job simulated %d records, want %d", done.Records, len(recs))
	}
	if reg.Counter("dinero.sharded_runs").Value() == 0 {
		t.Error("sharded run telemetry missing")
	}

	v2 := submit(t, ts.URL, "?wait=1", glb)
	if done2 := waitState(t, ts.URL, v2.ID, StateDone); !done2.Cached {
		t.Error("duplicate sharded upload not served from the cache")
	} else if rep2 := fetchReport(t, ts.URL, v2.ID); rep2 != got {
		t.Error("cached sharded report differs from the original")
	}

	// A rule forces the record-by-record pipeline: sharding and the
	// sharded-tier cache entry must not apply.
	v3 := submit(t, ts.URL, "?wait=1&rule="+url.QueryEscape(workloads.RuleTrans1), glb)
	if done3 := waitState(t, ts.URL, v3.ID, StateDone); done3.Cached {
		t.Error("rule job hit the sharded-tier cache entry")
	}
}
