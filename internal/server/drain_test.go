package server

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"tracedst/internal/cache"
	"tracedst/internal/telemetry"
)

// TestDrainRestartResume is the acceptance test for graceful drain: a
// server with one job running and one queued is drained mid-job; both
// jobs must be persisted as queued, and a restarted server on the same
// state directory must run them to completion with reports
// byte-identical to an uninterrupted run.
func TestDrainRestartResume(t *testing.T) {
	dir := t.TempDir()
	recs := workloadRecords(4000)
	glb := encodeGLB(t, recs, 32) // 125 batches
	want := refReport(t, recs, cache.Paper32KDirect())

	srv, err := New(Config{
		StateDir:   dir,
		Workers:    1,
		RatePerSec: -1,
		Reg:        telemetry.NewRegistry(),
		Throttle:   20 * time.Millisecond, // job takes ~2.5s: drain catches it mid-run
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	running := submit(t, ts.URL, "", glb)
	queued := submit(t, ts.URL, "", glb)
	waitState(t, ts.URL, running.ID, StateRunning)
	// Give the running job time to make real progress before the drain,
	// so the test exercises an interruption with partial work to discard.
	deadline := time.Now().Add(5 * time.Second)
	for getJob(t, ts.URL, running.ID).Progress == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	cancel()
	ts.Close()

	// The second process: same state dir, no artificial slowness.
	srv2, err := New(Config{StateDir: dir, Workers: 2, RatePerSec: -1, Reg: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv2.Shutdown(ctx)
		ts2.Close()
	}()

	for _, id := range []string{running.ID, queued.ID} {
		v := getJob(t, ts2.URL, id)
		if !v.Resumed {
			t.Errorf("%s not marked resumed after restart", id)
		}
		done := waitState(t, ts2.URL, id, StateDone)
		if done.Records != int64(len(recs)) {
			t.Errorf("%s resumed run simulated %d records, want %d", id, done.Records, len(recs))
		}
		if got := fetchReport(t, ts2.URL, id); got != want {
			t.Errorf("%s: resumed report differs from uninterrupted run:\n--- want ---\n%s\n--- got ---\n%s",
				id, want, got)
		}
	}
}

// TestDrainPersistsQueuedState: after Shutdown, the checkpoint on disk
// holds every unfinished job as queued — nothing is lost, nothing is
// left marked running.
func TestDrainPersistsQueuedState(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Config{
		StateDir:   dir,
		Workers:    1,
		RatePerSec: -1,
		Reg:        telemetry.NewRegistry(),
		Throttle:   20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	glb := encodeGLB(t, workloadRecords(4000), 32)
	a := submit(t, ts.URL, "", glb)
	b := submit(t, ts.URL, "", glb)
	waitState(t, ts.URL, a.ID, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.Close()

	// Read the persisted state back the way a fresh process would.
	srv2, err := New(Config{StateDir: dir, Workers: 1, RatePerSec: -1, Reg: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{a.ID, b.ID} {
		j := srv2.lookup(id)
		if j == nil {
			t.Fatalf("job %s lost across restart", id)
		}
		j.mu.Lock()
		state, resumed := j.State, j.Resumed
		j.mu.Unlock()
		if state != StateQueued || !resumed {
			t.Errorf("job %s restored as state=%s resumed=%v, want queued/resumed", id, state, resumed)
		}
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	srv2.Shutdown(ctx2)
}
