package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tracedst/internal/cache"
	"tracedst/internal/dinero"
	"tracedst/internal/telemetry"
	"tracedst/internal/trace"
)

// workloadRecords builds a deterministic access pattern big enough to
// span many binary blocks (so jobs progress batch by batch).
func workloadRecords(n int) []trace.Record {
	recs := make([]trace.Record, 0, n)
	for i := 0; i < n; i++ {
		op := trace.Load
		if i%3 == 0 {
			op = trace.Store
		}
		recs = append(recs, trace.Record{
			Op:   op,
			Addr: 0x10000 + uint64(i%257)*64,
			Size: 4,
			Func: "work",
		})
	}
	return recs
}

// encodeGLB renders records as a .glb stream, blockRecs records per
// block (each block is one streaming batch on the server).
func encodeGLB(t *testing.T, recs []trace.Record, blockRecs int) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw := trace.NewBinaryWriter(&buf)
	bw.SetBlockRecords(blockRecs)
	if err := bw.WriteHeader(trace.Header{PID: 7}); err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := bw.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// refReport simulates recs directly — the byte-identical oracle for what
// a done job's report must say.
func refReport(t *testing.T, recs []trace.Record, cfg cache.Config) string {
	t.Helper()
	sim, err := dinero.New(dinero.Options{L1: cfg})
	if err != nil {
		t.Fatal(err)
	}
	sim.Process(recs)
	return sim.Report()
}

// newTestServer starts a Server (rate limiting off unless the mutator
// turns it on) plus an httptest front end, both torn down with the test.
func newTestServer(t *testing.T, mut func(*Config)) (*Server, *httptest.Server, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	cfg := Config{
		StateDir:   t.TempDir(),
		RatePerSec: -1, // tests opt in explicitly
		Reg:        reg,
	}
	if mut != nil {
		mut(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		ts.Close()
	})
	return srv, ts, reg
}

// submit POSTs body and decodes the accepted job view.
func submit(t *testing.T, base, query string, body []byte) jobView {
	t.Helper()
	resp, err := http.Post(base+"/jobs"+query, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, raw)
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// getJob fetches /jobs/{id}.
func getJob(t *testing.T, base, id string) jobView {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get %s: status %d", id, resp.StatusCode)
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// waitState polls until the job reaches want (fatal on a different
// terminal state or timeout).
func waitState(t *testing.T, base, id string, want JobState) jobView {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		v := getJob(t, base, id)
		if v.State == want {
			return v
		}
		if v.State.terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, v.State, v.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s waiting for %s", id, v.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func fetchReport(t *testing.T, base, id string) string {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report %s: status %d", id, resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestJobLifecycle: upload → queued/running → done, with the report
// byte-identical to a direct simulation of the same records.
func TestJobLifecycle(t *testing.T) {
	_, ts, reg := newTestServer(t, nil)
	recs := workloadRecords(2000)
	glb := encodeGLB(t, recs, 64)

	v := submit(t, ts.URL, "", glb)
	if v.ID == "" || v.Format != "binary" || v.Bytes != int64(len(glb)) {
		t.Fatalf("accepted view %+v", v)
	}
	done := waitState(t, ts.URL, v.ID, StateDone)
	if done.Records != int64(len(recs)) {
		t.Errorf("job simulated %d records, want %d", done.Records, len(recs))
	}
	if done.Progress != int64(len(recs)) {
		t.Errorf("done job progress %d, want %d", done.Progress, len(recs))
	}
	got := fetchReport(t, ts.URL, v.ID)
	if want := refReport(t, recs, cache.Paper32KDirect()); got != want {
		t.Errorf("report diverges from direct simulation:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	if n := reg.Counter("server.uploads").Value(); n != 1 {
		t.Errorf("server.uploads = %d, want 1", n)
	}
	if n := reg.Counter("server.jobs_done").Value(); n != 1 {
		t.Errorf("server.jobs_done = %d, want 1", n)
	}

	// Text uploads take the same path through the sniffer.
	var text bytes.Buffer
	tw := trace.NewWriter(&text)
	if err := tw.WriteHeader(trace.Header{PID: 7}); err != nil {
		t.Fatal(err)
	}
	for i := range recs[:100] {
		if err := tw.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	v2 := submit(t, ts.URL, "", text.Bytes())
	if v2.Format != "text" {
		t.Errorf("text upload sniffed as %q", v2.Format)
	}
	waitState(t, ts.URL, v2.ID, StateDone)
}

// TestSubmitWait: ?wait=1 blocks until the job is terminal.
func TestSubmitWait(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)
	glb := encodeGLB(t, workloadRecords(500), 64)
	v := submit(t, ts.URL, "?wait=1", glb)
	if v.State != StateDone {
		t.Fatalf("wait=1 returned state %s, want done", v.State)
	}
}

// TestSubmitConfigAndRule: per-job cache geometry and transformation
// rule override the server defaults; bad ones are rejected up front.
func TestSubmitConfigAndRule(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)
	recs := workloadRecords(800)
	glb := encodeGLB(t, recs, 64)

	v := submit(t, ts.URL, "?wait=1&config=size%3D1k%2Cassoc%3D2", glb)
	if v.State != StateDone {
		t.Fatalf("config job ended %s: %s", v.State, v.Error)
	}
	cfg := cache.Paper32KDirect()
	cfg.Size = 1024
	cfg.Assoc = 2
	if got := fetchReport(t, ts.URL, v.ID); got == refReport(t, recs, cache.Paper32KDirect()) {
		t.Error("config override had no effect on the report")
	} else if want := refReport(t, recs, cfg); got != want {
		t.Errorf("config job report:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}

	for _, q := range []string{"?config=size%3Dbanana", "?rule=split%20nonsense"} {
		resp, err := http.Post(ts.URL+"/jobs"+q, "application/octet-stream", bytes.NewReader(glb))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestInvalidTraceFailsJob: an upload that decodes as garbage fails the
// job (not the server) with a diagnosable error.
func TestInvalidTraceFailsJob(t *testing.T) {
	_, ts, reg := newTestServer(t, nil)
	v := submit(t, ts.URL, "?wait=1", []byte("this is not a trace\nnot even close\n"))
	if v.State != StateFailed {
		t.Fatalf("garbage upload ended %s, want failed", v.State)
	}
	if !strings.Contains(v.Error, "validation") {
		t.Errorf("failure reason %q does not mention validation", v.Error)
	}
	if n := reg.Counter("server.jobs_failed").Value(); n != 1 {
		t.Errorf("server.jobs_failed = %d, want 1", n)
	}
}

// TestCancelRunningJob: DELETE on a running job cancels it promptly.
func TestCancelRunningJob(t *testing.T) {
	_, ts, _ := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.Throttle = 25 * time.Millisecond
	})
	glb := encodeGLB(t, workloadRecords(5000), 16) // many batches: long job
	v := submit(t, ts.URL, "", glb)
	waitState(t, ts.URL, v.ID, StateRunning)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	got := waitState(t, ts.URL, v.ID, StateCanceled)
	if got.Report != "" {
		t.Error("canceled job has a report")
	}

	// A second DELETE is a conflict: the job is already terminal.
	resp2, err := http.DefaultClient.Do(req.Clone(req.Context()))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Errorf("re-cancel: status %d, want 409", resp2.StatusCode)
	}
}

// TestListAndEndpoints: /jobs lists submissions in order; /healthz,
// /readyz and /metrics respond with their documented shapes.
func TestListAndEndpoints(t *testing.T) {
	_, ts, _ := newTestServer(t, nil)
	glb := encodeGLB(t, workloadRecords(200), 64)
	a := submit(t, ts.URL, "?wait=1", glb)
	b := submit(t, ts.URL, "?wait=1", glb)

	resp, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []jobView `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 2 || list.Jobs[0].ID != a.ID || list.Jobs[1].ID != b.ID {
		t.Fatalf("list = %+v, want [%s %s]", list.Jobs, a.ID, b.ID)
	}

	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", ep, resp.StatusCode)
		}
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var man telemetry.Manifest
	if err := json.NewDecoder(mresp.Body).Decode(&man); err != nil {
		t.Fatal(err)
	}
	if man.Schema != telemetry.ManifestSchema || man.Tool != "tracedstd" {
		t.Errorf("manifest schema/tool = %d/%q", man.Schema, man.Tool)
	}
	if man.Counters["server.uploads"] != 2 {
		t.Errorf("manifest server.uploads = %d, want 2", man.Counters["server.uploads"])
	}

	if resp, err := http.Get(ts.URL + "/jobs/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("missing job: status %d, want 404", resp.StatusCode)
		}
	}
}

// TestSSEEvents: the event stream reports state transitions and closes
// on the terminal state; a queued (quiet) job gets heartbeats.
func TestSSEEvents(t *testing.T) {
	_, ts, reg := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.Heartbeat = 80 * time.Millisecond
		c.Throttle = 15 * time.Millisecond
	})
	long := encodeGLB(t, workloadRecords(3000), 64) // ~47 batches ≈ 700ms
	running := submit(t, ts.URL, "", long)
	queued := submit(t, ts.URL, "", long) // parked behind it: quiet stream

	// The queued job's stream must heartbeat while nothing changes.
	qresp, err := http.Get(ts.URL + "/jobs/" + queued.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	var qstream strings.Builder
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && !strings.Contains(qstream.String(), ": heartbeat") {
		n, rerr := qresp.Body.Read(buf)
		qstream.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	qresp.Body.Close()
	if !strings.Contains(qstream.String(), ": heartbeat") {
		t.Errorf("no heartbeat on a quiet stream:\n%s", qstream.String())
	}
	if reg.Counter("server.sse_heartbeats").Value() == 0 {
		t.Error("heartbeat counter never incremented")
	}

	// The running job's stream ends at the terminal state.
	resp, err := http.Get(ts.URL + "/jobs/" + running.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body) // server closes at terminal state
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	stream := string(raw)
	if !strings.Contains(stream, "event: state") {
		t.Fatalf("no state events in stream:\n%s", stream)
	}
	if !strings.Contains(stream, `"state":"done"`) {
		t.Errorf("stream did not end with a done event:\n%s", stream)
	}
	waitState(t, ts.URL, queued.ID, StateDone)
}

// TestReportConflictBeforeDone: the report endpoint refuses until done.
func TestReportConflictBeforeDone(t *testing.T) {
	_, ts, _ := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.Throttle = 25 * time.Millisecond
	})
	glb := encodeGLB(t, workloadRecords(3000), 16)
	v := submit(t, ts.URL, "", glb)
	resp, err := http.Get(ts.URL + "/jobs/" + v.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("report before done: status %d, want 409", resp.StatusCode)
	}
}

// TestSequentialIDsSurviveRestart: job numbering continues after a
// restart rather than colliding with persisted jobs.
func TestSequentialIDsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	srv, err := New(Config{StateDir: dir, RatePerSec: -1, Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	glb := encodeGLB(t, workloadRecords(100), 64)
	first := submit(t, ts.URL, "?wait=1", glb)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	srv.Shutdown(ctx)
	cancel()
	ts.Close()

	srv2, err := New(Config{StateDir: dir, RatePerSec: -1, Reg: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv2.Shutdown(ctx)
		ts2.Close()
	}()
	// The finished job is still visible, report intact.
	if got := getJob(t, ts2.URL, first.ID); got.State != StateDone {
		t.Fatalf("restarted server reports %s as %s", first.ID, got.State)
	}
	second := submit(t, ts2.URL, "?wait=1", glb)
	if second.ID == first.ID {
		t.Fatalf("restart reused job ID %s", first.ID)
	}
	if fmt.Sprintf("j%06d", jobSeq(first.ID)+1) != second.ID {
		t.Errorf("IDs not sequential across restart: %s then %s", first.ID, second.ID)
	}
}
