package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tracedst/internal/cache"
	"tracedst/internal/cliutil"
	"tracedst/internal/dinero"
	"tracedst/internal/experiments"
	"tracedst/internal/rules"
	"tracedst/internal/simcache"
	"tracedst/internal/telemetry"
	"tracedst/internal/trace"
	"tracedst/internal/xform"
)

// JobState is one station of the job lifecycle. The machine is
//
//	queued → running → done | failed | canceled
//
// with one extra edge for resilience: a graceful drain moves running
// jobs back to queued (persisted), and a restarted server re-runs them
// from scratch — the pipeline is deterministic, so the re-run's report
// is byte-identical to what the uninterrupted run would have produced.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// terminal reports whether the state is final.
func (st JobState) terminal() bool {
	return st == StateDone || st == StateFailed || st == StateCanceled
}

// Job is the persisted face of one managed trace-analysis run: both the
// API resource (minus Report, which has its own endpoint) and the value
// checkpointed under "job/<id>", so a restarted server reloads exactly
// what the API was reporting.
type Job struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Format is the sniffed container of the upload ("text" or "binary").
	Format string `json:"format"`
	// ConfigSpec is the cache geometry override ("" = server default).
	ConfigSpec string `json:"config,omitempty"`
	// Rule is the optional dsxform rule source applied before simulation.
	Rule string `json:"rule,omitempty"`
	// Bytes is the spooled upload size.
	Bytes int64 `json:"bytes"`
	// Records is the number of records simulated (0 until done).
	Records int64 `json:"records"`
	// BadLines counts damaged units skipped during decode.
	BadLines int `json:"bad_lines,omitempty"`
	// Warnings counts validator warnings (e.g. a damaged .glb footer).
	Warnings int `json:"warnings,omitempty"`
	// Attempts is how many times the job ran under the retry policy.
	Attempts int `json:"attempts,omitempty"`
	// Resumed marks a job re-adopted from a previous server process.
	Resumed bool `json:"resumed,omitempty"`
	// Cached marks a job answered from the content-addressed result
	// cache: an identical (trace, config, rule) was already simulated, so
	// the stored report was returned without re-walking the trace.
	Cached bool `json:"cached,omitempty"`
	// Error is the failure/cancel reason for terminal non-done states.
	Error string `json:"error,omitempty"`
	// Report is the rendered simulator report (done jobs only).
	Report string `json:"report,omitempty"`
	// TraceID is the job's distributed-tracing identity: taken from the
	// upload's traceparent/X-Request-ID or freshly assigned, echoed in the
	// X-Trace-ID response header, and stamped on every span the job emits.
	TraceID string `json:"trace_id,omitempty"`
	// ParentSpan is the remote parent span from an incoming traceparent,
	// so the job's spans graft onto the caller's trace.
	ParentSpan string `json:"parent_span,omitempty"`
	// Resources is the job's resource accounting: live (sampled) while
	// running, final once terminal. Cleared on a drain revert.
	Resources *JobResources `json:"resources,omitempty"`

	Submitted time.Time `json:"submitted"`
	Finished  time.Time `json:"finished,omitempty"`
}

// JobResources accounts one job's execution cost. CPU time is the
// process-wide clock delta over the job's run — exact when workers run one
// job at a time, an upper bound under concurrency. Heap numbers come from
// periodic runtime sampling, so the peak is a floor (a spike between
// samples can escape it).
type JobResources struct {
	// WallNS is elapsed wall time (so far, while running).
	WallNS int64 `json:"wall_ns"`
	// CPUNS is the process CPU-time delta (user+system).
	CPUNS int64 `json:"cpu_ns"`
	// BytesIn is the spooled upload size being processed.
	BytesIn int64 `json:"bytes_in"`
	// Records is how many records have been streamed.
	Records int64 `json:"records"`
	// RecordsPerSec is Records over wall time.
	RecordsPerSec float64 `json:"records_per_sec"`
	// HeapStartBytes is HeapAlloc when the job started.
	HeapStartBytes int64 `json:"heap_start_bytes"`
	// HeapPeakBytes is the highest sampled HeapAlloc during the run.
	HeapPeakBytes int64 `json:"heap_peak_bytes"`
	// HeapPeakDelta is HeapPeakBytes - HeapStartBytes (floored at 0).
	HeapPeakDelta int64 `json:"heap_peak_delta_bytes"`
	// GCRuns is how many GC cycles completed during the run.
	GCRuns int64 `json:"gc_runs"`
}

// job is the in-memory runtime around a Job: lock, cancel handle, live
// progress and the completion latch.
type job struct {
	mu sync.Mutex
	Job
	cancel     context.CancelFunc // non-nil while running
	userCancel bool               // DELETE requested; distinguishes cancel from drain
	progress   atomic.Int64       // records streamed so far in the current attempt
	done       chan struct{}      // closed on terminal transition
}

// jobView is what list/detail endpoints and SSE events serialize: the
// persisted Job minus the (possibly large) report, plus live progress.
type jobView struct {
	Job
	Report   string `json:"report,omitempty"` // shadowed: never inline
	Progress int64  `json:"progress"`
}

// view snapshots the job for serialization.
func (j *job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{Job: j.Job, Progress: j.progress.Load()}
	v.Report = ""
	if j.State == StateDone {
		v.Progress = j.Records
	}
	return v
}

// runJob executes one queued job under the server's RunPolicy and drives
// its state machine to a terminal state — or back to queued when the
// server is draining, so the next process can adopt it.
func (s *Server) runJob(j *job) {
	j.mu.Lock()
	if j.State != StateQueued {
		j.mu.Unlock()
		return
	}
	if s.baseCtx.Err() != nil {
		// Draining before the job ever started: leave it queued for the
		// next process (it is already persisted as queued).
		j.mu.Unlock()
		return
	}
	jctx, cancel := context.WithCancel(s.baseCtx)
	j.State = StateRunning
	j.cancel = cancel
	traceID, parentSpan := j.TraceID, j.ParentSpan
	format, bytes := j.Format, j.Bytes
	j.mu.Unlock()
	s.persist(j)
	s.gauges()

	// Root the job's span tree: every stage span started from runCtx
	// inherits the job's trace ID, the "job" attr, and server.job as its
	// ancestor. Without an exporter the context stays untraced and the
	// stages pay nothing extra.
	runCtx := jctx
	var root *telemetry.Span
	if s.cfg.Exporter != nil && traceID != "" {
		if tid, err := telemetry.ParseTraceID(traceID); err == nil {
			parent := telemetry.SpanID{}
			if parentSpan != "" {
				parent, _ = telemetry.ParseSpanID(parentSpan)
			}
			tctx := telemetry.ContextWithRemoteParent(jctx, s.cfg.Exporter, tid, parent)
			tctx = telemetry.ContextWithAttrs(tctx, "job", j.ID)
			root, runCtx = s.reg.StartSpanCtx(tctx, "server.job")
			root.SetAttr("format", format)
			root.SetAttr("bytes", strconv.FormatInt(bytes, 10))
		}
	}
	acct := startJobAccounting(j)

	attempts, err := experiments.RunOne(runCtx, s.cfg.Policy, func(ctx context.Context) error {
		return s.execute(ctx, j)
	})
	cancel()
	acct.stop()

	j.mu.Lock()
	j.Attempts = attempts
	j.cancel = nil
	switch {
	case err == nil:
		j.State = StateDone
		j.Finished = s.cfg.now()
		if j.Resources != nil {
			s.reg.Histogram("server.job_wall_ns").Observe(j.Resources.WallNS)
			s.reg.Counter("server.job_cpu_ns").Add(j.Resources.CPUNS)
		}
	case errors.Is(err, context.Canceled) && !j.userCancel && s.baseCtx.Err() != nil:
		// Graceful drain: revert to queued so the restarted server
		// re-runs the job; determinism makes the re-run byte-identical.
		j.State = StateQueued
		j.Error = ""
		j.Report = ""
		j.Records = 0
		j.Cached = false
		j.Resources = nil
	case errors.Is(err, context.Canceled):
		j.State = StateCanceled
		j.Error = "canceled"
		j.Finished = s.cfg.now()
	default:
		j.State = StateFailed
		j.Error = err.Error()
		j.Finished = s.cfg.now()
	}
	terminal := j.State.terminal()
	state := j.State
	if terminal {
		// Count before the state becomes observable, so a client that
		// polls the job to completion already sees the counter bumped.
		s.reg.Counter("server.jobs_" + string(j.State)).Inc()
	}
	j.mu.Unlock()
	if root != nil {
		root.SetAttr("state", string(state))
		root.SetAttr("attempts", strconv.Itoa(attempts))
		root.End()
	}
	s.persist(j)
	if terminal {
		close(j.done)
		if s.cfg.Exporter != nil {
			if ferr := s.cfg.Exporter.Flush(); ferr != nil {
				s.log.Error("span export flush failed", "job", j.ID, "err", ferr)
			}
		}
	}
	s.gauges()
}

// jobAccountingInterval is the resource-sampling cadence while a job
// runs: frequent enough that SSE watchers see live numbers, cheap enough
// (one ReadMemStats per tick) to vanish against simulation cost.
const jobAccountingInterval = 250 * time.Millisecond

// jobAccountant samples one running job's resource usage into
// j.Resources until stopped.
type jobAccountant struct {
	j     *job
	start time.Time
	cpu0  time.Duration
	heap0 int64
	gc0   int64
	peak  int64
	done  chan struct{}
	wg    sync.WaitGroup
}

// startJobAccounting baselines the process and begins sampling. Call
// stop exactly once when the attempt finishes; j.Resources then holds
// the final accounting.
func startJobAccounting(j *job) *jobAccountant {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	a := &jobAccountant{
		j:     j,
		start: time.Now(),
		cpu0:  telemetry.ProcessCPU(),
		heap0: int64(ms.HeapAlloc),
		gc0:   int64(ms.NumGC),
		peak:  int64(ms.HeapAlloc),
		done:  make(chan struct{}),
	}
	a.publish(&ms)
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		t := time.NewTicker(jobAccountingInterval)
		defer t.Stop()
		for {
			select {
			case <-a.done:
				return
			case <-t.C:
				a.publish(nil)
			}
		}
	}()
	return a
}

// publish takes one sample and swaps a fresh JobResources onto the job —
// fresh, not mutated in place, so a concurrent serializer holding the
// previous pointer never sees it change underneath.
func (a *jobAccountant) publish(ms *runtime.MemStats) {
	if ms == nil {
		ms = new(runtime.MemStats)
		runtime.ReadMemStats(ms)
	}
	if h := int64(ms.HeapAlloc); h > a.peak {
		a.peak = h
	}
	wall := time.Since(a.start)
	res := &JobResources{
		WallNS:         wall.Nanoseconds(),
		CPUNS:          max64(int64(telemetry.ProcessCPU()-a.cpu0), 0),
		Records:        a.j.progress.Load(),
		HeapStartBytes: a.heap0,
		HeapPeakBytes:  a.peak,
		GCRuns:         max64(int64(ms.NumGC)-a.gc0, 0),
	}
	if d := res.HeapPeakBytes - res.HeapStartBytes; d > 0 {
		res.HeapPeakDelta = d
	}
	if sec := wall.Seconds(); sec > 0 {
		res.RecordsPerSec = float64(res.Records) / sec
	}
	a.j.mu.Lock()
	res.BytesIn = a.j.Bytes
	a.j.Resources = res
	a.j.mu.Unlock()
}

// stop ends the sampler and takes the final sample.
func (a *jobAccountant) stop() {
	close(a.done)
	a.wg.Wait()
	a.publish(nil)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// execute is one attempt of the decode → validate → xform → dinero
// pipeline, streaming the spooled upload in constant memory. It runs
// under the job context: client cancellation, drain and the per-job
// timeout all surface here between record batches. An upload whose
// (trace, config, rule) is already in the result cache skips the
// pipeline entirely and finishes with the stored report and cached:true.
func (s *Server) execute(ctx context.Context, j *job) error {
	j.progress.Store(0)
	path := s.spoolPath(j.ID)

	// Resolve the config up front: it is part of the result-cache key.
	cfg := s.cfg.BaseConfig
	var err error
	if j.ConfigSpec != "" {
		cfg, err = cliutil.ParseConfigSpec(s.cfg.BaseConfig, j.ConfigSpec)
		if err != nil {
			return err
		}
	}
	shards := s.jobShards(j)
	ckey, haveKey := s.cacheKey(j, path, cfg, shards)
	if haveKey {
		if e, ok, gerr := s.simc.Get(ckey); gerr == nil && ok {
			j.progress.Store(e.Records)
			j.mu.Lock()
			j.Records = e.Records
			j.BadLines = e.BadLines
			j.Warnings = e.Warnings
			j.Report = e.Report
			j.Cached = true
			j.mu.Unlock()
			s.reg.Counter("server.jobs_cached").Inc()
			return nil
		}
	}

	// Pass 1: structural validation. Region checks are skipped — uploads
	// come from arbitrary tracers whose address spaces the server's
	// memory model knows nothing about.
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	rep, verr := trace.ValidateCtx(ctx, f, trace.ValidateOptions{SkipRegionChecks: true})
	f.Close()
	if verr != nil {
		return verr
	}
	if !rep.OK() {
		first := ""
		for _, d := range rep.Diags {
			if d.Sev == trace.SevError {
				first = d.String()
				break
			}
		}
		return fmt.Errorf("trace failed validation: %d errors; first: %s", rep.Errors(), first)
	}
	j.mu.Lock()
	j.Warnings = rep.Warnings()
	j.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}

	if shards > 1 {
		// Sharded pass 2: an indexed binary upload with no rule splits
		// over JobShards cold simulators and merges — one big job uses
		// all cores. The report equals a serial run with a cache Flush at
		// every shard boundary.
		tr, err := trace.OpenIndexed(path)
		if err != nil {
			return err
		}
		res, rerr := dinero.SimulateShardedContext(ctx, tr, dinero.Options{L1: cfg}, shards, trace.DecodeOptions{})
		tr.Close()
		if rerr != nil {
			return rerr
		}
		sim := res.Sim
		j.progress.Store(sim.Records())
		j.mu.Lock()
		j.Records = sim.Records()
		j.Report = sim.Report()
		j.mu.Unlock()
		s.reg.Counter("server.records_simulated").Add(sim.Records())
		res.PublishShardTelemetry(s.reg)
		s.cachePut(j, ckey, haveKey)
		return nil
	}

	// Pass 2: optional transformation feeding the simulator, straight
	// from the spool file batch by batch.
	sim, err := dinero.New(dinero.Options{L1: cfg})
	if err != nil {
		return err
	}
	ts, err := cliutil.OpenTraceSourceCtx(ctx, path, trace.DecodeOptions{})
	if err != nil {
		return err
	}
	defer ts.Close()
	var src trace.RecordSource = &jobSource{ctx: ctx, src: ts, progress: &j.progress, delay: s.cfg.Throttle}
	simCtx := ctx
	var xsp *telemetry.Span
	if j.Rule != "" {
		rule, err := rules.Parse(j.Rule)
		if err != nil {
			return err
		}
		eng, err := xform.New(xform.Options{}, rule)
		if err != nil {
			return err
		}
		src = &xformSource{src: src, eng: eng}
		// The xform span covers the simulation drive: the engine runs
		// lazily inside each NextBatch the simulator pulls.
		xsp, simCtx = telemetry.Default().StartSpanCtx(ctx, "xform.stream")
	}
	serr := sim.ProcessSourceCtx(simCtx, src)
	if xsp != nil {
		xsp.SetAttr("records_out", strconv.FormatInt(sim.Records(), 10))
		xsp.End()
	}
	if serr != nil {
		return serr
	}

	j.mu.Lock()
	j.Records = sim.Records()
	j.BadLines = ts.BadLines()
	j.Report = sim.Report()
	j.mu.Unlock()
	s.reg.Counter("server.records_simulated").Add(sim.Records())
	sim.PublishTelemetry(s.reg)
	s.cachePut(j, ckey, haveKey)
	return nil
}

// jobShards resolves the effective shard count for one job. The sharded
// engine applies to indexed binary uploads simulated plainly: text
// uploads have no block index, rules stream record-by-record, and a
// throttled server wants jobs held in flight, not finished faster.
func (s *Server) jobShards(j *job) int {
	if s.cfg.JobShards > 1 && j.Format == "binary" && j.Rule == "" && s.cfg.Throttle == 0 {
		return s.cfg.JobShards
	}
	return 1
}

// cacheKey derives the job's result-cache key: trace content hash ×
// config × rule hash × shard tier × engine version. It reports false —
// no lookup, no store — when the cache is off, the server is throttled
// (Throttle holds jobs in flight; a hit would defeat it), or the spool
// file cannot be hashed.
func (s *Server) cacheKey(j *job, path string, cfg cache.Config, shards int) (simcache.Key, bool) {
	if s.simc == nil || s.cfg.Throttle != 0 {
		return simcache.Key{}, false
	}
	th, err := simcache.HashFile(path)
	if err != nil {
		return simcache.Key{}, false
	}
	k := simcache.Key{
		Trace:  th,
		Config: simcache.ConfigSig(cfg),
		Rule:   simcache.HashText(j.Rule),
		Engine: simcache.EngineVersion,
	}
	if shards > 1 {
		// Sharded reports are the flush-at-boundary reference — a
		// distinct tier that must not answer (or be answered by) serial
		// runs.
		k.Sampling = fmt.Sprintf("@jobshards%d", shards)
	}
	return k, true
}

// cachePut stores a finished job's outcome under its key; failures are
// logged, not fatal — the job already has its report.
func (s *Server) cachePut(j *job, k simcache.Key, haveKey bool) {
	if !haveKey {
		return
	}
	j.mu.Lock()
	e := simcache.Entry{
		Records:  j.Records,
		BadLines: j.BadLines,
		Warnings: j.Warnings,
		Report:   j.Report,
	}
	j.mu.Unlock()
	if err := s.simc.Put(k, e); err != nil {
		s.log.Error("result cache store failed", "job", j.ID, "err", err.Error())
	}
}

// jobSource threads the job context and live progress into a
// RecordSource; the optional delay throttles batches (test hook for
// exercising drain and cancellation mid-job).
type jobSource struct {
	ctx      context.Context
	src      trace.RecordSource
	progress *atomic.Int64
	delay    time.Duration
}

func (s *jobSource) Header() (trace.Header, error) { return s.src.Header() }
func (s *jobSource) HasHeader() bool               { return s.src.HasHeader() }
func (s *jobSource) BadLines() int                 { return s.src.BadLines() }

func (s *jobSource) NextBatch() ([]trace.Record, error) {
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	if s.delay > 0 {
		t := time.NewTimer(s.delay)
		select {
		case <-s.ctx.Done():
			t.Stop()
			return nil, s.ctx.Err()
		case <-t.C:
		}
	}
	recs, err := s.src.NextBatch()
	s.progress.Add(int64(len(recs)))
	return recs, err
}

// xformSource applies a transformation engine record-by-record between
// a source and its consumer, preserving streaming (O(batch) memory).
type xformSource struct {
	src trace.RecordSource
	eng *xform.Engine
	out []trace.Record
}

func (s *xformSource) Header() (trace.Header, error) { return s.src.Header() }
func (s *xformSource) HasHeader() bool               { return s.src.HasHeader() }
func (s *xformSource) BadLines() int                 { return s.src.BadLines() }

func (s *xformSource) NextBatch() ([]trace.Record, error) {
	for {
		in, err := s.src.NextBatch()
		if err != nil {
			return nil, err
		}
		s.out = s.out[:0]
		for i := range in {
			recs, err := s.eng.Transform(&in[i])
			if err != nil {
				return nil, err
			}
			s.out = append(s.out, recs...)
		}
		if len(s.out) > 0 {
			return s.out, nil
		}
	}
}
