package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"tracedst/internal/cliutil"
	"tracedst/internal/dinero"
	"tracedst/internal/experiments"
	"tracedst/internal/rules"
	"tracedst/internal/trace"
	"tracedst/internal/xform"
)

// JobState is one station of the job lifecycle. The machine is
//
//	queued → running → done | failed | canceled
//
// with one extra edge for resilience: a graceful drain moves running
// jobs back to queued (persisted), and a restarted server re-runs them
// from scratch — the pipeline is deterministic, so the re-run's report
// is byte-identical to what the uninterrupted run would have produced.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// terminal reports whether the state is final.
func (st JobState) terminal() bool {
	return st == StateDone || st == StateFailed || st == StateCanceled
}

// Job is the persisted face of one managed trace-analysis run: both the
// API resource (minus Report, which has its own endpoint) and the value
// checkpointed under "job/<id>", so a restarted server reloads exactly
// what the API was reporting.
type Job struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Format is the sniffed container of the upload ("text" or "binary").
	Format string `json:"format"`
	// ConfigSpec is the cache geometry override ("" = server default).
	ConfigSpec string `json:"config,omitempty"`
	// Rule is the optional dsxform rule source applied before simulation.
	Rule string `json:"rule,omitempty"`
	// Bytes is the spooled upload size.
	Bytes int64 `json:"bytes"`
	// Records is the number of records simulated (0 until done).
	Records int64 `json:"records"`
	// BadLines counts damaged units skipped during decode.
	BadLines int `json:"bad_lines,omitempty"`
	// Warnings counts validator warnings (e.g. a damaged .glb footer).
	Warnings int `json:"warnings,omitempty"`
	// Attempts is how many times the job ran under the retry policy.
	Attempts int `json:"attempts,omitempty"`
	// Resumed marks a job re-adopted from a previous server process.
	Resumed bool `json:"resumed,omitempty"`
	// Error is the failure/cancel reason for terminal non-done states.
	Error string `json:"error,omitempty"`
	// Report is the rendered simulator report (done jobs only).
	Report string `json:"report,omitempty"`

	Submitted time.Time `json:"submitted"`
	Finished  time.Time `json:"finished,omitempty"`
}

// job is the in-memory runtime around a Job: lock, cancel handle, live
// progress and the completion latch.
type job struct {
	mu sync.Mutex
	Job
	cancel     context.CancelFunc // non-nil while running
	userCancel bool               // DELETE requested; distinguishes cancel from drain
	progress   atomic.Int64       // records streamed so far in the current attempt
	done       chan struct{}      // closed on terminal transition
}

// jobView is what list/detail endpoints and SSE events serialize: the
// persisted Job minus the (possibly large) report, plus live progress.
type jobView struct {
	Job
	Report   string `json:"report,omitempty"` // shadowed: never inline
	Progress int64  `json:"progress"`
}

// view snapshots the job for serialization.
func (j *job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{Job: j.Job, Progress: j.progress.Load()}
	v.Report = ""
	if j.State == StateDone {
		v.Progress = j.Records
	}
	return v
}

// runJob executes one queued job under the server's RunPolicy and drives
// its state machine to a terminal state — or back to queued when the
// server is draining, so the next process can adopt it.
func (s *Server) runJob(j *job) {
	j.mu.Lock()
	if j.State != StateQueued {
		j.mu.Unlock()
		return
	}
	if s.baseCtx.Err() != nil {
		// Draining before the job ever started: leave it queued for the
		// next process (it is already persisted as queued).
		j.mu.Unlock()
		return
	}
	jctx, cancel := context.WithCancel(s.baseCtx)
	j.State = StateRunning
	j.cancel = cancel
	j.mu.Unlock()
	s.persist(j)
	s.gauges()

	attempts, err := experiments.RunOne(jctx, s.cfg.Policy, func(ctx context.Context) error {
		return s.execute(ctx, j)
	})
	cancel()

	j.mu.Lock()
	j.Attempts = attempts
	j.cancel = nil
	switch {
	case err == nil:
		j.State = StateDone
		j.Finished = s.cfg.now()
	case errors.Is(err, context.Canceled) && !j.userCancel && s.baseCtx.Err() != nil:
		// Graceful drain: revert to queued so the restarted server
		// re-runs the job; determinism makes the re-run byte-identical.
		j.State = StateQueued
		j.Error = ""
		j.Report = ""
		j.Records = 0
	case errors.Is(err, context.Canceled):
		j.State = StateCanceled
		j.Error = "canceled"
		j.Finished = s.cfg.now()
	default:
		j.State = StateFailed
		j.Error = err.Error()
		j.Finished = s.cfg.now()
	}
	terminal := j.State.terminal()
	if terminal {
		// Count before the state becomes observable, so a client that
		// polls the job to completion already sees the counter bumped.
		s.reg.Counter("server.jobs_" + string(j.State)).Inc()
	}
	j.mu.Unlock()
	s.persist(j)
	if terminal {
		close(j.done)
	}
	s.gauges()
}

// execute is one attempt of the decode → validate → xform → dinero
// pipeline, streaming the spooled upload in constant memory. It runs
// under the job context: client cancellation, drain and the per-job
// timeout all surface here between record batches.
func (s *Server) execute(ctx context.Context, j *job) error {
	j.progress.Store(0)
	path := s.spoolPath(j.ID)

	// Pass 1: structural validation. Region checks are skipped — uploads
	// come from arbitrary tracers whose address spaces the server's
	// memory model knows nothing about.
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	rep, verr := trace.Validate(f, trace.ValidateOptions{SkipRegionChecks: true})
	f.Close()
	if verr != nil {
		return verr
	}
	if !rep.OK() {
		first := ""
		for _, d := range rep.Diags {
			if d.Sev == trace.SevError {
				first = d.String()
				break
			}
		}
		return fmt.Errorf("trace failed validation: %d errors; first: %s", rep.Errors(), first)
	}
	j.mu.Lock()
	j.Warnings = rep.Warnings()
	j.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}

	// Pass 2: optional transformation feeding the simulator, straight
	// from the spool file batch by batch.
	cfg := s.cfg.BaseConfig
	if j.ConfigSpec != "" {
		cfg, err = cliutil.ParseConfigSpec(s.cfg.BaseConfig, j.ConfigSpec)
		if err != nil {
			return err
		}
	}
	sim, err := dinero.New(dinero.Options{L1: cfg})
	if err != nil {
		return err
	}
	ts, err := cliutil.OpenTraceSource(path, trace.DecodeOptions{})
	if err != nil {
		return err
	}
	defer ts.Close()
	var src trace.RecordSource = &jobSource{ctx: ctx, src: ts, progress: &j.progress, delay: s.cfg.Throttle}
	if j.Rule != "" {
		rule, err := rules.Parse(j.Rule)
		if err != nil {
			return err
		}
		eng, err := xform.New(xform.Options{}, rule)
		if err != nil {
			return err
		}
		src = &xformSource{src: src, eng: eng}
	}
	if err := sim.ProcessSource(src); err != nil {
		return err
	}

	j.mu.Lock()
	j.Records = sim.Records()
	j.BadLines = ts.BadLines()
	j.Report = sim.Report()
	j.mu.Unlock()
	s.reg.Counter("server.records_simulated").Add(sim.Records())
	sim.PublishTelemetry(s.reg)
	return nil
}

// jobSource threads the job context and live progress into a
// RecordSource; the optional delay throttles batches (test hook for
// exercising drain and cancellation mid-job).
type jobSource struct {
	ctx      context.Context
	src      trace.RecordSource
	progress *atomic.Int64
	delay    time.Duration
}

func (s *jobSource) Header() (trace.Header, error) { return s.src.Header() }
func (s *jobSource) HasHeader() bool               { return s.src.HasHeader() }
func (s *jobSource) BadLines() int                 { return s.src.BadLines() }

func (s *jobSource) NextBatch() ([]trace.Record, error) {
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	if s.delay > 0 {
		t := time.NewTimer(s.delay)
		select {
		case <-s.ctx.Done():
			t.Stop()
			return nil, s.ctx.Err()
		case <-t.C:
		}
	}
	recs, err := s.src.NextBatch()
	s.progress.Add(int64(len(recs)))
	return recs, err
}

// xformSource applies a transformation engine record-by-record between
// a source and its consumer, preserving streaming (O(batch) memory).
type xformSource struct {
	src trace.RecordSource
	eng *xform.Engine
	out []trace.Record
}

func (s *xformSource) Header() (trace.Header, error) { return s.src.Header() }
func (s *xformSource) HasHeader() bool               { return s.src.HasHeader() }
func (s *xformSource) BadLines() int                 { return s.src.BadLines() }

func (s *xformSource) NextBatch() ([]trace.Record, error) {
	for {
		in, err := s.src.NextBatch()
		if err != nil {
			return nil, err
		}
		s.out = s.out[:0]
		for i := range in {
			recs, err := s.eng.Transform(&in[i])
			if err != nil {
				return nil, err
			}
			s.out = append(s.out, recs...)
		}
		if len(s.out) > 0 {
			return s.out, nil
		}
	}
}
