package server

import (
	"sync"
	"time"
)

// maxBuckets bounds the per-client bucket map so an attacker cycling
// client ids cannot grow server memory without bound; full (idle)
// buckets are pruned first.
const maxBuckets = 4096

// rateLimiter is a per-client token bucket: each client key accrues
// rate tokens per second up to burst, and every admitted request spends
// one. It is the admission-control half of the 429 path.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newRateLimiter returns a limiter; rate <= 0 disables limiting.
func newRateLimiter(rate float64, burst int, now func() time.Time) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{rate: rate, burst: float64(burst), now: now, buckets: map[string]*bucket{}}
}

// allow spends one token for key. When the bucket is empty it reports
// false plus how long until a token is available — the Retry-After value.
func (rl *rateLimiter) allow(key string) (bool, time.Duration) {
	if rl.rate <= 0 {
		return true, 0
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	now := rl.now()
	b := rl.buckets[key]
	if b == nil {
		if len(rl.buckets) >= maxBuckets {
			rl.prune()
		}
		b = &bucket{tokens: rl.burst, last: now}
		rl.buckets[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * rl.rate
	if b.tokens > rl.burst {
		b.tokens = rl.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / rl.rate * float64(time.Second))
	return false, wait
}

// prune drops refilled (idle) buckets; callers hold mu.
func (rl *rateLimiter) prune() {
	now := rl.now()
	for k, b := range rl.buckets {
		tokens := b.tokens + now.Sub(b.last).Seconds()*rl.rate
		if tokens >= rl.burst {
			delete(rl.buckets, k)
		}
	}
}
