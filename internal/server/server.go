// Package server implements tracedstd, the resilient trace-analysis
// service: it accepts trace uploads over HTTP, runs each as a managed
// job through the decode → validate → xform → dinero pipeline, and
// defends itself with admission control (rate limiting, body caps,
// bounded queueing), per-job timeouts/retries/panic isolation, and a
// graceful drain that checkpoints in-flight jobs so a restarted server
// resumes them to byte-identical reports.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"tracedst/internal/cache"
	"tracedst/internal/cliutil"
	"tracedst/internal/experiments"
	"tracedst/internal/rules"
	"tracedst/internal/simcache"
	"tracedst/internal/telemetry"
	"tracedst/internal/trace"
)

// Config tunes a Server. The zero value is not usable: StateDir is
// required; every other field has a production default.
type Config struct {
	// StateDir is where the server persists state: job records (a
	// checkpoint directory under jobs/) and spooled uploads (spool/).
	// Restarting a server on the same StateDir adopts its jobs.
	StateDir string
	// Workers is the number of concurrent job executors (default 2).
	Workers int
	// QueueDepth bounds the pending-job queue; submissions beyond it are
	// shed with 503 (default 16).
	QueueDepth int
	// MaxBodyBytes caps an upload body; larger requests get 413
	// (default 64 MiB).
	MaxBodyBytes int64
	// RatePerSec and Burst shape the per-client token bucket guarding
	// POST /jobs; exhausted clients get 429 + Retry-After. RatePerSec 0
	// uses the default (10/s, burst 20); negative disables limiting.
	RatePerSec float64
	Burst      int
	// BodyTimeout bounds reading one upload body, defeating slow-loris
	// writers (default 30s; negative disables).
	BodyTimeout time.Duration
	// Heartbeat is the SSE keep-alive comment interval (default 10s).
	Heartbeat time.Duration
	// Policy is the per-job run policy (timeout, retries, panic
	// isolation). The zero value means no deadline and no retries.
	Policy experiments.RunPolicy
	// BaseConfig is the default L1 geometry jobs simulate against when
	// the upload does not carry a config override (default the paper's
	// 32K direct-mapped cache).
	BaseConfig cache.Config
	// Reg receives server telemetry (default telemetry.Default()).
	Reg *telemetry.Registry
	// Exporter receives completed span events for every traced job (nil
	// disables span export; trace IDs are still assigned and echoed).
	Exporter *telemetry.SpanExporter
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the API
	// handler. Off by default: the profiling endpoints expose internals
	// and should only face operators.
	EnablePprof bool
	// Log receives structured logs (default: discard).
	Log *slog.Logger
	// Throttle sleeps this long between record batches of every job — a
	// debugging/benchmark aid that makes job duration proportional to
	// trace size, so drain behavior can be exercised deterministically
	// (tests and the CI smoke rely on it). Zero, the default, disables.
	// A throttled server also bypasses the result cache: its purpose is
	// holding jobs in flight, which a cache hit would defeat.
	Throttle time.Duration
	// JobShards > 1 runs each indexed binary upload (no rule) through the
	// sharded simulation engine with that many workers, so one big job
	// uses all cores. Reports equal a serial run with a cache Flush at
	// every shard boundary. 0/1 = serial.
	JobShards int
	// DisableSimCache turns off the content-addressed result store under
	// StateDir/simcache. With the cache on (the default), a duplicate
	// upload of an already-simulated (trace, config, rule) completes
	// immediately with the stored report and cached:true.
	DisableSimCache bool

	// now is a test hook: a fake clock for the rate limiter.
	now func() time.Time
}

func (c *Config) applyDefaults() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.RatePerSec == 0 {
		c.RatePerSec = 10
	}
	if c.Burst <= 0 {
		c.Burst = 20
	}
	if c.BodyTimeout == 0 {
		c.BodyTimeout = 30 * time.Second
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 10 * time.Second
	}
	if c.BaseConfig == (cache.Config{}) {
		c.BaseConfig = cache.Paper32KDirect()
	}
	if c.Reg == nil {
		c.Reg = telemetry.Default()
	}
	if c.Log == nil {
		c.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.now == nil {
		c.now = time.Now
	}
}

// Server is a running tracedstd instance.
type Server struct {
	cfg     Config
	reg     *telemetry.Registry
	log     *slog.Logger
	ck      *experiments.Checkpoint
	simc    *simcache.Store // nil when DisableSimCache
	limiter *rateLimiter

	baseCtx    context.Context // canceled when draining starts
	baseCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // job IDs in submission order
	queue    chan *job
	draining bool
	seq      int

	wg sync.WaitGroup
}

// New builds a Server on cfg.StateDir, adopting any jobs a previous
// process left behind: terminal jobs are served read-only, queued and
// formerly running jobs are re-enqueued (marked Resumed) and will re-run
// deterministically to the same reports. Workers start immediately.
func New(cfg Config) (*Server, error) {
	cfg.applyDefaults()
	if cfg.StateDir == "" {
		return nil, errors.New("server: Config.StateDir is required")
	}
	for _, d := range []string{cfg.StateDir, filepath.Join(cfg.StateDir, "spool"), filepath.Join(cfg.StateDir, "jobs")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}
	ck, err := experiments.OpenCheckpoint(filepath.Join(cfg.StateDir, "jobs"))
	if err != nil {
		return nil, err
	}
	var simc *simcache.Store
	if !cfg.DisableSimCache {
		simc, err = simcache.Open(filepath.Join(cfg.StateDir, "simcache"), cfg.Reg)
		if err != nil {
			return nil, err
		}
	}
	baseCtx, baseCancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		reg:        cfg.Reg,
		simc:       simc,
		log:        cfg.Log,
		ck:         ck,
		limiter:    newRateLimiter(cfg.RatePerSec, cfg.Burst, cfg.now),
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
		jobs:       map[string]*job{},
	}

	// Adopt persisted jobs before sizing the queue: resumed jobs must all
	// fit regardless of QueueDepth, or a restart could shed its own
	// backlog.
	var resumable []*job
	for _, key := range ck.Keys("job/") {
		var rec Job
		if ok, err := ck.Get(key, &rec); err != nil || !ok {
			continue
		}
		j := &job{Job: rec, done: make(chan struct{})}
		if n := jobSeq(rec.ID); n > s.seq {
			s.seq = n
		}
		if rec.State.terminal() {
			close(j.done)
		} else {
			if _, err := os.Stat(s.spoolPath(rec.ID)); err != nil {
				j.State = StateFailed
				j.Error = "spooled upload lost across restart"
				j.Finished = cfg.now()
				close(j.done)
				s.jobs[rec.ID] = j
				s.order = append(s.order, rec.ID)
				s.persist(j)
				continue
			}
			j.State = StateQueued
			j.Resumed = true
			j.Error = ""
			s.reg.Counter("server.jobs_resumed").Inc()
			resumable = append(resumable, j)
		}
		s.jobs[rec.ID] = j
		s.order = append(s.order, rec.ID)
	}
	s.queue = make(chan *job, cfg.QueueDepth+len(resumable))
	for _, j := range resumable {
		s.persist(j)
		s.queue <- j
	}
	s.gauges()

	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
	s.log.Info("server ready", "state", cfg.StateDir, "workers", cfg.Workers,
		"resumed", len(resumable), "jobs", len(s.jobs))
	return s, nil
}

// jobSeq parses the numeric part of a "j%06d" job ID (0 if malformed).
func jobSeq(id string) int {
	if len(id) < 2 || id[0] != 'j' {
		return 0
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil {
		return 0
	}
	return n
}

func (s *Server) spoolPath(id string) string {
	return filepath.Join(s.cfg.StateDir, "spool", id+".trace")
}

// persist checkpoints the job's current Job record.
func (s *Server) persist(j *job) {
	j.mu.Lock()
	rec := j.Job
	j.mu.Unlock()
	if err := s.ck.Put("job/"+rec.ID, rec); err != nil {
		s.log.Error("checkpoint write failed", "job", rec.ID, "err", err)
	}
}

// gauges refreshes the queue/running gauges.
func (s *Server) gauges() {
	s.mu.Lock()
	var queued, running int64
	for _, j := range s.jobs {
		j.mu.Lock()
		switch j.State {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	s.reg.Gauge("server.queue_depth").Set(queued)
	s.reg.Gauge("server.jobs_running").Set(running)
}

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	}
	return mux
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{"error": fmt.Sprintf(format, args...), "status": status})
}

// requestTrace resolves the trace identity of an upload: a W3C
// traceparent header wins (carrying the remote parent span), then an
// X-Request-ID — used verbatim when it already is a 32-hex trace ID,
// hashed into one otherwise — and a fresh random ID when the client sent
// neither. Every job therefore has a trace ID, whether or not the caller
// participates in distributed tracing.
func requestTrace(r *http.Request) (telemetry.TraceID, telemetry.SpanID) {
	if tp := r.Header.Get("traceparent"); tp != "" {
		if tid, sid, err := telemetry.ParseTraceparent(tp); err == nil {
			return tid, sid
		}
	}
	if rid := r.Header.Get("X-Request-ID"); rid != "" {
		if tid, err := telemetry.ParseTraceID(rid); err == nil {
			return tid, telemetry.SpanID{}
		}
		return telemetry.DeriveTraceID(rid), telemetry.SpanID{}
	}
	return telemetry.NewTraceID(), telemetry.SpanID{}
}

// clientKey identifies the client for rate limiting: the X-Client-ID
// header when present, else the remote address host.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// handleSubmit is the admission-controlled upload path:
//
//	draining           → 503 + Retry-After
//	rate limit         → 429 + Retry-After
//	queue full         → 503
//	body over cap      → 413
//	slow/torn body     → 400
//
// An admitted upload is spooled to disk (so the job survives restarts),
// sniffed for container format, persisted as a queued job and enqueued.
// With ?wait=1 the handler blocks until the job finishes; a client that
// disconnects while waiting cancels the job.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		w.Header().Set("Retry-After", "5")
		s.reg.Counter("server.rejected_drain").Inc()
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if ok, wait := s.limiter.allow(clientKey(r)); !ok {
		w.Header().Set("Retry-After", strconv.Itoa(int(wait/time.Second)+1))
		s.reg.Counter("server.rejected_rate").Inc()
		httpError(w, http.StatusTooManyRequests, "rate limit exceeded, retry in %v", wait.Round(time.Millisecond))
		return
	}
	// Cheap precheck before reading the body; the enqueue below rechecks
	// under the lock.
	if len(s.queue) >= cap(s.queue) {
		s.reg.Counter("server.rejected_queue").Inc()
		httpError(w, http.StatusServiceUnavailable, "job queue full (%d pending)", cap(s.queue))
		return
	}

	// Validate analysis parameters before spooling anything.
	configSpec := r.URL.Query().Get("config")
	if configSpec != "" {
		if _, err := cliutil.ParseConfigSpec(s.cfg.BaseConfig, configSpec); err != nil {
			httpError(w, http.StatusBadRequest, "bad config %q: %v", configSpec, err)
			return
		}
	}
	ruleSrc := r.URL.Query().Get("rule")
	if ruleSrc != "" {
		if _, err := rules.Parse(ruleSrc); err != nil {
			httpError(w, http.StatusBadRequest, "bad rule %q: %v", ruleSrc, err)
			return
		}
	}

	// Read the body under the size cap and the slow-loris deadline.
	if s.cfg.BodyTimeout > 0 {
		rc := http.NewResponseController(w)
		rc.SetReadDeadline(s.cfg.now().Add(s.cfg.BodyTimeout))
		defer rc.SetReadDeadline(time.Time{})
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	tmp, err := os.CreateTemp(filepath.Join(s.cfg.StateDir, "spool"), "upload-*")
	if err != nil {
		httpError(w, http.StatusInternalServerError, "spool: %v", err)
		return
	}
	tmpName := tmp.Name()
	n, err := io.Copy(tmp, body)
	cerr := tmp.Close()
	if err != nil || cerr != nil {
		os.Remove(tmpName)
		var tooBig *http.MaxBytesError
		switch {
		case errors.As(err, &tooBig):
			s.reg.Counter("server.rejected_size").Inc()
			httpError(w, http.StatusRequestEntityTooLarge, "upload exceeds %d byte limit", s.cfg.MaxBodyBytes)
		case err != nil:
			s.reg.Counter("server.rejected_body").Inc()
			httpError(w, http.StatusBadRequest, "reading upload: %v", err)
		default:
			httpError(w, http.StatusInternalServerError, "spool: %v", cerr)
		}
		return
	}
	if n == 0 {
		os.Remove(tmpName)
		s.reg.Counter("server.rejected_body").Inc()
		httpError(w, http.StatusBadRequest, "empty upload")
		return
	}
	prefix := make([]byte, trace.BinaryMagicLen)
	pf, err := os.Open(tmpName)
	if err == nil {
		m, _ := io.ReadFull(pf, prefix)
		prefix = prefix[:m]
		pf.Close()
	}
	format := trace.DetectFormat(prefix)

	// Create the job and move the spool into place under its ID.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		os.Remove(tmpName)
		w.Header().Set("Retry-After", "5")
		s.reg.Counter("server.rejected_drain").Inc()
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	tid, parentSpan := requestTrace(r)
	s.seq++
	id := fmt.Sprintf("j%06d", s.seq)
	j := &job{
		Job: Job{
			ID:         id,
			State:      StateQueued,
			Format:     format.String(),
			ConfigSpec: configSpec,
			Rule:       ruleSrc,
			Bytes:      n,
			TraceID:    tid.String(),
			Submitted:  s.cfg.now().UTC(),
		},
		done: make(chan struct{}),
	}
	if !parentSpan.IsZero() {
		j.ParentSpan = parentSpan.String()
	}
	if err := os.Rename(tmpName, s.spoolPath(id)); err != nil {
		s.seq--
		s.mu.Unlock()
		os.Remove(tmpName)
		httpError(w, http.StatusInternalServerError, "spool: %v", err)
		return
	}
	select {
	case s.queue <- j:
	default:
		s.seq--
		s.mu.Unlock()
		os.Remove(s.spoolPath(id))
		s.reg.Counter("server.rejected_queue").Inc()
		httpError(w, http.StatusServiceUnavailable, "job queue full (%d pending)", cap(s.queue))
		return
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.persist(j)
	s.reg.Counter("server.uploads").Inc()
	s.gauges()
	s.log.Info("job accepted", "job", id, "bytes", n, "format", j.Format, "trace", j.TraceID)

	w.Header().Set("X-Trace-ID", j.TraceID)
	if r.URL.Query().Get("wait") != "" {
		s.waitForJob(w, r, j)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/jobs/"+id)
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, j.view())
}

// waitForJob services ?wait=1: block until the job reaches a terminal
// state, canceling it if the waiting client disconnects first.
func (s *Server) waitForJob(w http.ResponseWriter, r *http.Request, j *job) {
	select {
	case <-j.done:
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, j.view())
	case <-r.Context().Done():
		// The uploader hung up; their job goes with them.
		s.cancelJob(j, "client disconnected")
	case <-s.baseCtx.Done():
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusServiceUnavailable, "server is draining; job %s will resume after restart", j.ID)
	}
}

// cancelJob requests cancellation of a queued or running job.
func (s *Server) cancelJob(j *job, reason string) bool {
	j.mu.Lock()
	if j.State.terminal() {
		j.mu.Unlock()
		return false
	}
	j.userCancel = true
	cancel := j.cancel
	if j.State == StateQueued {
		// Never started: transition directly; the worker will skip it.
		j.State = StateCanceled
		j.Error = reason
		j.Finished = s.cfg.now()
		s.reg.Counter("server.jobs_canceled").Inc()
		j.mu.Unlock()
		s.persist(j)
		close(j.done)
		s.gauges()
		return true
	}
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return true
}

func writeJSON(w io.Writer, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	views := make([]jobView, 0, len(ids))
	for _, id := range ids {
		if j := s.lookup(id); j != nil {
			views = append(views, j.view())
		}
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, map[string]any{"jobs": views})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, j.view())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	if !s.cancelJob(j, "canceled by client") {
		httpError(w, http.StatusConflict, "job already finished")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, j.view())
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	j.mu.Lock()
	rec := j.Job
	j.mu.Unlock()
	if rec.State != StateDone {
		httpError(w, http.StatusConflict, "job is %s, report only exists once done", rec.State)
		return
	}
	// ?format=json (or an Accept asking for JSON) returns the full job
	// record — report inline plus trace ID and resource accounting — for
	// machine consumers; the default stays the plain-text report.
	if r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json") {
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, rec)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, rec.Report)
}

// wantPrometheus decides the /metrics representation: ?format=prom (or
// prometheus) forces the text exposition, ?format=json forces JSON, and
// with no format parameter an Accept header naming openmetrics or
// text/plain opts in. The default — including curl's Accept: */* — stays
// the JSON snapshot, so existing scrapers are unaffected.
func wantPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prom", "prometheus":
		return true
	case "":
	default:
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "application/openmetrics-text") ||
		strings.Contains(accept, "text/plain")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.gauges()
	if wantPrometheus(r) {
		w.Header().Set("Content-Type", telemetry.PromContentType)
		if err := s.reg.WritePrometheus(w, "tracedstd"); err != nil {
			s.log.Error("metrics write failed", "err", err)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := s.reg.Snapshot("tracedstd").WriteTo(w); err != nil {
		s.log.Error("metrics write failed", "err", err)
	}
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.isDraining() {
		w.Header().Set("Retry-After", "5")
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	s.mu.Lock()
	var queued, running int
	for _, j := range s.jobs {
		j.mu.Lock()
		switch j.State {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
		j.mu.Unlock()
	}
	workers := s.cfg.Workers
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	writeJSON(w, map[string]int{"queued": queued, "running": running, "workers": workers})
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown drains the server: new submissions are refused, running jobs
// are interrupted and reverted to queued (persisted), and workers are
// awaited until ctx expires. A server restarted on the same StateDir
// re-adopts everything in flight.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	close(s.queue) // workers exit once the backlog is drained or skipped
	s.mu.Unlock()

	s.baseCancel() // running jobs observe cancellation between batches
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.log.Info("drain complete")
		return nil
	case <-ctx.Done():
		s.log.Warn("drain timed out with workers still running")
		return ctx.Err()
	}
}
