// Command metricscheck validates the pipeline's observability artifacts.
// It checks a telemetry metrics manifest against the checked-in JSON
// schema and the pipeline's semantic invariants, a span JSONL export
// against the span schema plus trace-tree invariants (parent referential
// integrity, timestamp ordering), and a Prometheus text exposition
// against the format's lint rules. CI runs all three:
//
//	go run ./tools/metricscheck -schema schema/metrics.schema.json metrics.json
//	go run ./tools/metricscheck -lossless -require experiments.tasks metrics.json
//	go run ./tools/metricscheck -spans spans.jsonl
//	go run ./tools/metricscheck -prom metrics.prom
//
// It implements exactly the JSON Schema subset the schema files use —
// type, const, minimum, required, properties, additionalProperties and
// #/definitions/* refs — so the repository stays dependency-free.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	schemaPath := flag.String("schema", "schema/metrics.schema.json", "JSON schema to validate the manifest against")
	lossless := flag.Bool("lossless", false, "require every decoded/ingested record to be simulated (or counted as ignored)")
	spansPath := flag.String("spans", "", "validate this span JSONL export (schema + trace-tree invariants)")
	spansSchemaPath := flag.String("spans-schema", "schema/spans.schema.json", "JSON schema to validate span lines against")
	promPath := flag.String("prom", "", "lint this Prometheus text exposition file")
	var require requireList
	flag.Var(&require, "require", "counter that must be present and nonzero (repeatable)")
	flag.Parse()
	if flag.NArg() > 1 || (flag.NArg() == 0 && *spansPath == "" && *promPath == "") {
		fmt.Fprintln(os.Stderr, "metricscheck: usage: metricscheck [-schema FILE] [-lossless] [-require COUNTER] [-spans FILE] [-prom FILE] [MANIFEST]")
		os.Exit(2)
	}

	failed := false
	report := func(path string, errs []string) {
		if len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "metricscheck: %s: %s\n", path, e)
			}
			failed = true
			return
		}
		fmt.Printf("metricscheck: %s: ok\n", path)
	}

	if flag.NArg() == 1 {
		schema, err := loadJSON(*schemaPath)
		if err != nil {
			fatal(err)
		}
		doc, err := loadJSON(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		v := &validator{root: schema.(map[string]any)}
		v.validate("$", doc, v.root)
		checkInvariants(v, doc, *lossless, require)
		report(flag.Arg(0), v.errs)
	}
	if *spansPath != "" {
		errs, err := checkSpans(*spansPath, *spansSchemaPath)
		if err != nil {
			fatal(err)
		}
		report(*spansPath, errs)
	}
	if *promPath != "" {
		errs, err := checkProm(*promPath)
		if err != nil {
			fatal(err)
		}
		report(*promPath, errs)
	}
	if failed {
		os.Exit(1)
	}
}

// requireList is the repeatable -require flag.
type requireList []string

func (r *requireList) String() string     { return strings.Join(*r, ",") }
func (r *requireList) Set(s string) error { *r = append(*r, s); return nil }

func loadJSON(path string) (any, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return v, nil
}

// validator walks a document against the schema subset, collecting every
// violation rather than stopping at the first.
type validator struct {
	root map[string]any
	errs []string
}

func (v *validator) errorf(format string, args ...any) {
	v.errs = append(v.errs, fmt.Sprintf(format, args...))
}

// resolve follows a local "#/definitions/NAME" ref.
func (v *validator) resolve(schema map[string]any) map[string]any {
	ref, ok := schema["$ref"].(string)
	if !ok {
		return schema
	}
	const prefix = "#/definitions/"
	name := strings.TrimPrefix(ref, prefix)
	if name == ref {
		v.errorf("unsupported $ref %q (only %sNAME)", ref, prefix)
		return nil
	}
	defs, _ := v.root["definitions"].(map[string]any)
	target, ok := defs[name].(map[string]any)
	if !ok {
		v.errorf("unresolved $ref %q", ref)
		return nil
	}
	return target
}

func (v *validator) validate(path string, doc any, schema map[string]any) {
	schema = v.resolve(schema)
	if schema == nil {
		return
	}
	if typ, ok := schema["type"].(string); ok && !hasType(doc, typ) {
		v.errorf("%s: got %s, want %s", path, typeName(doc), typ)
		return
	}
	if c, ok := schema["const"]; ok && !jsonEqual(doc, c) {
		v.errorf("%s: got %v, want constant %v", path, doc, c)
	}
	if min, ok := schema["minimum"].(float64); ok {
		if n, ok := doc.(float64); ok && n < min {
			v.errorf("%s: %v below minimum %v", path, n, min)
		}
	}
	obj, ok := doc.(map[string]any)
	if !ok {
		return
	}
	if req, ok := schema["required"].([]any); ok {
		for _, k := range req {
			if _, present := obj[k.(string)]; !present {
				v.errorf("%s: missing required property %q", path, k)
			}
		}
	}
	props, _ := schema["properties"].(map[string]any)
	addl := schema["additionalProperties"]
	for key, val := range obj {
		sub := path + "." + key
		if ps, ok := props[key].(map[string]any); ok {
			v.validate(sub, val, ps)
			continue
		}
		switch a := addl.(type) {
		case map[string]any:
			v.validate(sub, val, a)
		case bool:
			if !a {
				v.errorf("%s: unexpected property", sub)
			}
		}
	}
}

func hasType(doc any, typ string) bool {
	switch typ {
	case "object":
		_, ok := doc.(map[string]any)
		return ok
	case "string":
		_, ok := doc.(string)
		return ok
	case "number":
		_, ok := doc.(float64)
		return ok
	case "integer":
		n, ok := doc.(float64)
		return ok && n == float64(int64(n))
	case "boolean":
		_, ok := doc.(bool)
		return ok
	case "array":
		_, ok := doc.([]any)
		return ok
	default:
		return false
	}
}

func typeName(doc any) string {
	switch doc.(type) {
	case map[string]any:
		return "object"
	case []any:
		return "array"
	case string:
		return "string"
	case float64:
		return "number"
	case bool:
		return "boolean"
	case nil:
		return "null"
	}
	return fmt.Sprintf("%T", doc)
}

func jsonEqual(a, b any) bool {
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	return string(ja) == string(jb)
}

// checkInvariants enforces the semantic rules the schema alone cannot: the
// requested counters exist and fired, and on a -lossless run the simulator
// accounted for every record the pipeline handed it.
func checkInvariants(v *validator, doc any, lossless bool, require []string) {
	obj, ok := doc.(map[string]any)
	if !ok {
		return
	}
	counters, _ := obj["counters"].(map[string]any)
	get := func(name string) (int64, bool) {
		n, ok := counters[name].(float64)
		return int64(n), ok
	}
	for _, name := range require {
		if n, ok := get(name); !ok || n == 0 {
			v.errorf("required counter %q missing or zero", name)
		}
	}
	// Decoded records are attributed to exactly one container format, so
	// whenever the decoder ran, the per-format split must account for the
	// total.
	if decoded, ok := get("trace.decode.records"); ok {
		text, _ := get("trace.decode.records.text")
		binary, _ := get("trace.decode.records.binary")
		if decoded != text+binary {
			v.errorf("trace.decode.records %d != text %d + binary %d", decoded, text, binary)
		}
	}
	// Single-pass multi-config runs: the shared front end feeds every
	// configuration the same simulated-record stream, so the per-run
	// product simulated-records × configs must equal what the configs
	// actually consumed.
	if cfgRecs, ok := get("multisim.config_records"); ok {
		if n, _ := get("multisim.configs"); n == 0 {
			v.errorf("multisim.config_records present but multisim.configs is zero")
		}
		if perCfg, _ := get("multisim.per_config_records"); cfgRecs != perCfg {
			v.errorf("multisim.config_records %d != multisim.per_config_records %d", cfgRecs, perCfg)
		}
	}
	// The simulation result cache resolves every lookup to exactly one
	// hit or one miss.
	if lookups, ok := get("simcache.lookups"); ok {
		hits, _ := get("simcache.hits")
		misses, _ := get("simcache.misses")
		if hits+misses != lookups {
			v.errorf("simcache.hits %d + simcache.misses %d != simcache.lookups %d", hits, misses, lookups)
		}
	}
	if !lossless {
		return
	}
	simulated, haveSim := get("dinero.records_simulated")
	ignored, _ := get("dinero.records_ignored")
	if !haveSim {
		v.errorf("-lossless: no dinero.records_simulated counter")
		return
	}
	if in, ok := get("experiments.records_in"); ok && in != simulated {
		v.errorf("-lossless: experiments.records_in %d != dinero.records_simulated %d", in, simulated)
	}
	if decoded, ok := get("trace.decode.records"); ok && decoded != simulated+ignored {
		v.errorf("-lossless: trace.decode.records %d != simulated %d + ignored %d",
			decoded, simulated, ignored)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "metricscheck:", err)
	os.Exit(2)
}
