// Span JSONL validation: every line must satisfy the span schema, and
// the lines together must form coherent trace trees — well-formed hex
// IDs, no duplicate span IDs within a trace, parents that exist in the
// same trace, and child intervals nested inside their parent's.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// spanClockSlopNS tolerates the wall-clock read skew between a parent's
// and a child's start: timestamps are wall-clock reads but durations are
// monotonic, so nesting can be off by the clock's jitter.
const spanClockSlopNS = 5_000_000 // 5ms

// spanLine is the subset of fields the invariant checks need; the
// schema pass has already validated types and rejected unknown fields.
type spanLine struct {
	Trace   string `json:"trace"`
	Span    string `json:"span"`
	Parent  string `json:"parent"`
	Name    string `json:"name"`
	StartNS int64  `json:"start_unix_ns"`
	EndNS   int64  `json:"end_unix_ns"`
}

func checkSpans(path, schemaPath string) ([]string, error) {
	schemaDoc, err := loadJSON(schemaPath)
	if err != nil {
		return nil, err
	}
	schemaRoot, ok := schemaDoc.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("%s: schema is not an object", schemaPath)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var errs []string
	var spans []spanLine
	lineOf := map[string]int{} // "trace/span" -> first line, for duplicates
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		n++
		var doc any
		if err := json.Unmarshal([]byte(text), &doc); err != nil {
			errs = append(errs, fmt.Sprintf("line %d: %v", line, err))
			continue
		}
		v := &validator{root: schemaRoot}
		v.validate(fmt.Sprintf("line %d", line), doc, schemaRoot)
		errs = append(errs, v.errs...)
		if len(v.errs) > 0 {
			continue
		}
		var sp spanLine
		if err := json.Unmarshal([]byte(text), &sp); err != nil {
			errs = append(errs, fmt.Sprintf("line %d: %v", line, err))
			continue
		}
		if !isHex(sp.Trace, 32) {
			errs = append(errs, fmt.Sprintf("line %d: trace %q is not 32 hex digits", line, sp.Trace))
		}
		if !isHex(sp.Span, 16) {
			errs = append(errs, fmt.Sprintf("line %d: span %q is not 16 hex digits", line, sp.Span))
		}
		if sp.Parent != "" && !isHex(sp.Parent, 16) {
			errs = append(errs, fmt.Sprintf("line %d: parent %q is not 16 hex digits", line, sp.Parent))
		}
		if sp.EndNS < sp.StartNS {
			errs = append(errs, fmt.Sprintf("line %d: span %s ends (%d) before it starts (%d)", line, sp.Span, sp.EndNS, sp.StartNS))
		}
		key := sp.Trace + "/" + sp.Span
		if first, dup := lineOf[key]; dup {
			errs = append(errs, fmt.Sprintf("line %d: span ID %s duplicates line %d within trace %s", line, sp.Span, first, sp.Trace))
		} else {
			lineOf[key] = line
		}
		spans = append(spans, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if n == 0 {
		errs = append(errs, "no span lines")
	}

	// Tree invariants. A parent absent from the whole export is legal
	// exactly once per trace shape: remote parents (a traceparent's span
	// that lives in the caller's process) appear as in-export roots.
	// Parents that ARE in the export must be in the same trace and must
	// enclose the child's interval.
	byKey := map[string]spanLine{}
	for _, sp := range spans {
		byKey[sp.Trace+"/"+sp.Span] = sp
	}
	inExport := map[string]bool{}
	for _, sp := range spans {
		inExport[sp.Span] = true
	}
	for _, sp := range spans {
		if sp.Parent == "" {
			continue
		}
		parent, sameTrace := byKey[sp.Trace+"/"+sp.Parent]
		if !sameTrace {
			if inExport[sp.Parent] {
				errs = append(errs, fmt.Sprintf("span %s (%s): parent %s exists but in a different trace", sp.Span, sp.Name, sp.Parent))
			}
			continue
		}
		if sp.StartNS+spanClockSlopNS < parent.StartNS || sp.EndNS > parent.EndNS+spanClockSlopNS {
			errs = append(errs, fmt.Sprintf("span %s (%s) [%d,%d] escapes parent %s (%s) [%d,%d]",
				sp.Span, sp.Name, sp.StartNS, sp.EndNS, parent.Span, parent.Name, parent.StartNS, parent.EndNS))
		}
	}
	return errs, nil
}

// isHex reports whether s is exactly n lowercase hex digits.
func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for _, r := range s {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}
