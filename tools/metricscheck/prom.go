// Prometheus text exposition linting: the format rules a scraper would
// enforce — valid metric/label names, quoted label values, parseable
// sample values, TYPE declared before its samples, counter families named
// *_total, cumulative le-ordered histogram buckets whose +Inf equals
// _count, and no duplicate series.
package main

import (
	"bufio"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var (
	promMetricRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

func checkProm(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var errs []string
	types := map[string]string{} // family -> declared type
	seen := map[string]int{}     // series signature -> first line
	var samples []promSample
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for line := 1; sc.Scan(); line++ {
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(text)
			if len(fields) >= 3 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				name := fields[2]
				if !promMetricRe.MatchString(name) {
					errs = append(errs, fmt.Sprintf("line %d: bad metric name %q in %s", line, name, fields[1]))
				}
				if fields[1] == "TYPE" {
					if len(fields) != 4 {
						errs = append(errs, fmt.Sprintf("line %d: TYPE wants exactly one type", line))
						continue
					}
					switch fields[3] {
					case "counter", "gauge", "histogram", "summary", "untyped":
					default:
						errs = append(errs, fmt.Sprintf("line %d: unknown type %q", line, fields[3]))
					}
					if _, dup := types[name]; dup {
						errs = append(errs, fmt.Sprintf("line %d: duplicate TYPE for %s", line, name))
					}
					types[name] = fields[3]
					if fields[3] == "counter" && !strings.HasSuffix(name, "_total") {
						errs = append(errs, fmt.Sprintf("line %d: counter family %s does not end in _total", line, name))
					}
				}
			}
			continue
		}
		n++
		s, err := parsePromLine(text)
		if err != nil {
			errs = append(errs, fmt.Sprintf("line %d: %v", line, err))
			continue
		}
		s.line = line
		if fam := promFamily(s.name, types); fam == "" {
			errs = append(errs, fmt.Sprintf("line %d: sample %s has no preceding TYPE declaration", line, s.name))
		}
		sig := s.name + promSignature(s.labels)
		if first, dup := seen[sig]; dup {
			errs = append(errs, fmt.Sprintf("line %d: duplicate series %s (first at line %d)", line, sig, first))
		} else {
			seen[sig] = line
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if n == 0 {
		errs = append(errs, "no samples")
	}

	errs = append(errs, checkPromHistograms(samples, types)...)
	return errs, nil
}

// promFamily maps a sample name onto its declared family: exact match,
// or the histogram/summary component suffixes.
func promFamily(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if t, ok := types[base]; ok && (t == "histogram" || t == "summary") {
			return base
		}
	}
	return ""
}

// checkPromHistograms validates each histogram family (grouped by its
// non-le labels): le values ascending with +Inf last, bucket counts
// cumulative, +Inf equal to _count, and _sum present.
func checkPromHistograms(samples []promSample, types map[string]string) []string {
	var errs []string
	type group struct {
		buckets []promSample
		sum     *promSample
		count   *promSample
	}
	groups := map[string]*group{} // family + non-le signature
	order := []string{}
	get := func(key string) *group {
		g := groups[key]
		if g == nil {
			g = &group{}
			groups[key] = g
			order = append(order, key)
		}
		return g
	}
	for i, s := range samples {
		var fam, part string
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(s.name, suffix)
			if base != s.name && types[base] == "histogram" {
				fam, part = base, suffix
				break
			}
		}
		if fam == "" {
			continue
		}
		rest := map[string]string{}
		for k, v := range s.labels {
			if k != "le" {
				rest[k] = v
			}
		}
		g := get(fam + promSignature(rest))
		switch part {
		case "_bucket":
			g.buckets = append(g.buckets, s)
		case "_sum":
			g.sum = &samples[i]
		case "_count":
			g.count = &samples[i]
		}
	}
	for _, key := range order {
		g := groups[key]
		if len(g.buckets) == 0 {
			errs = append(errs, fmt.Sprintf("histogram %s: no buckets", key))
			continue
		}
		prevLe := math.Inf(-1)
		prevCum := int64(-1)
		for _, b := range g.buckets {
			leStr, ok := b.labels["le"]
			if !ok {
				errs = append(errs, fmt.Sprintf("line %d: bucket %s without le label", b.line, b.name))
				continue
			}
			le, err := parsePromValue(leStr)
			if err != nil {
				errs = append(errs, fmt.Sprintf("line %d: bad le %q", b.line, leStr))
				continue
			}
			if le <= prevLe {
				errs = append(errs, fmt.Sprintf("line %d: le %q out of order", b.line, leStr))
			}
			prevLe = le
			cum := int64(b.value)
			if cum < prevCum {
				errs = append(errs, fmt.Sprintf("line %d: bucket count %d below previous bucket %d (not cumulative)", b.line, cum, prevCum))
			}
			prevCum = cum
		}
		last := g.buckets[len(g.buckets)-1]
		if !math.IsInf(mustLe(last), 1) {
			errs = append(errs, fmt.Sprintf("histogram %s: last bucket le is %q, want +Inf", key, last.labels["le"]))
		}
		if g.count == nil {
			errs = append(errs, fmt.Sprintf("histogram %s: missing _count", key))
		} else if int64(last.value) != int64(g.count.value) {
			errs = append(errs, fmt.Sprintf("histogram %s: +Inf bucket %d != _count %d", key, int64(last.value), int64(g.count.value)))
		}
		if g.sum == nil {
			errs = append(errs, fmt.Sprintf("histogram %s: missing _sum", key))
		}
	}
	return errs
}

func mustLe(s promSample) float64 {
	le, err := parsePromValue(s.labels["le"])
	if err != nil {
		return math.NaN()
	}
	return le
}

// promSignature renders a label set deterministically for series
// identity.
func promSignature(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + strconv.Quote(labels[k])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// parsePromValue parses a sample or le value, accepting the exposition
// format's infinity spellings.
func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parsePromLine parses "name{label="v",...} value [timestamp]". The
// label-value scanner honors the format's escapes (\\, \", \n), so
// values may contain spaces, commas and braces.
func parsePromLine(text string) (promSample, error) {
	s := promSample{labels: map[string]string{}}
	i := 0
	for i < len(text) && isNameRune(text[i]) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("no metric name")
	}
	s.name = text[:i]
	if !promMetricRe.MatchString(s.name) {
		return s, fmt.Errorf("bad metric name %q", s.name)
	}
	if i < len(text) && text[i] == '{' {
		i++
		for {
			for i < len(text) && text[i] == ' ' {
				i++
			}
			if i < len(text) && text[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(text) && text[j] != '=' {
				j++
			}
			if j >= len(text) {
				return s, fmt.Errorf("unterminated label set")
			}
			label := text[i:j]
			if !promLabelRe.MatchString(label) {
				return s, fmt.Errorf("bad label name %q", label)
			}
			i = j + 1
			if i >= len(text) || text[i] != '"' {
				return s, fmt.Errorf("label %s: value is not quoted", label)
			}
			i++
			var val strings.Builder
			for {
				if i >= len(text) {
					return s, fmt.Errorf("label %s: unterminated value", label)
				}
				c := text[i]
				if c == '"' {
					i++
					break
				}
				if c == '\\' {
					if i+1 >= len(text) {
						return s, fmt.Errorf("label %s: dangling escape", label)
					}
					switch text[i+1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return s, fmt.Errorf("label %s: bad escape \\%c", label, text[i+1])
					}
					i += 2
					continue
				}
				val.WriteByte(c)
				i++
			}
			if _, dup := s.labels[label]; dup {
				return s, fmt.Errorf("duplicate label %s", label)
			}
			s.labels[label] = val.String()
			if i < len(text) && text[i] == ',' {
				i++
			}
		}
	}
	rest := strings.Fields(text[i:])
	if len(rest) < 1 || len(rest) > 2 {
		return s, fmt.Errorf("want VALUE [TIMESTAMP] after series, got %q", strings.TrimSpace(text[i:]))
	}
	v, err := parsePromValue(rest[0])
	if err != nil {
		return s, fmt.Errorf("bad value %q", rest[0])
	}
	s.value = v
	if len(rest) == 2 {
		if _, err := strconv.ParseInt(rest[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", rest[1])
		}
	}
	return s, nil
}

func isNameRune(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == ':'
}
