// Command memgate is the bounded-memory CI gate for the streaming
// pipeline. It generates a synthetic .glb trace several times larger than
// a Go soft memory limit, simulates it twice — once materialized (the
// reference), once through the streaming RecordSource path with
// debug.SetMemoryLimit clamped far below the trace size — and fails
// unless the streaming run (a) renders the byte-identical cache report
// and (b) keeps its sampled live heap under the limit. A materializing
// regression in any stage of the streaming path (decode, batching,
// simulate) blows straight through the limit and trips the gate:
//
//	go run ./tools/memgate                  # defaults: 16 MiB limit, 4x trace
//	go run ./tools/memgate -limit-mb 8 -ratio 6 -v
//
// Exit status: 0 PASS, 1 FAIL, 2 usage/setup error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"

	"tracedst/internal/cache"
	"tracedst/internal/cliutil"
	"tracedst/internal/dinero"
	"tracedst/internal/trace"
)

// gateConfig is the simulated cache: the paper's 64-way round-robin
// geometry, small enough that the simulator's own state is noise next to
// the memory limit.
var gateConfig = cache.Config{
	Name: "rr-32k-64w", Size: 32768, BlockSize: 32, Assoc: 64, Repl: cache.ReplRoundRobin,
}

func main() {
	limitMB := flag.Int64("limit-mb", 16, "soft memory limit (MiB) applied to the streaming run via debug.SetMemoryLimit")
	ratio := flag.Float64("ratio", 4, "required trace-file size as a multiple of the memory limit")
	block := flag.Int("block", 0, "records per .glb block (0 = encoder default)")
	keep := flag.Bool("keep", false, "keep the generated trace file (prints its path)")
	verbose := flag.Bool("v", false, "log generation and sampling progress")
	flag.Parse()
	if *limitMB <= 0 || *ratio < 1 {
		fmt.Fprintln(os.Stderr, "memgate: -limit-mb must be positive and -ratio >= 1")
		os.Exit(2)
	}
	limit := *limitMB << 20
	target := int64(float64(limit) * *ratio)

	dir, err := os.MkdirTemp("", "memgate")
	if err != nil {
		fatal(err)
	}
	path := filepath.Join(dir, "big.glb")
	if *keep {
		fmt.Printf("memgate: trace file %s\n", path)
	} else {
		defer os.RemoveAll(dir)
	}

	nrecs, size, err := generate(path, target, *block)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		fmt.Printf("memgate: generated %d records, %d bytes (%.1fx the %d MiB limit)\n",
			nrecs, size, float64(size)/float64(limit), *limitMB)
	}
	if size < target {
		fatal(fmt.Errorf("generated trace is %d bytes, below the %d-byte target", size, target))
	}

	// Materializing reference, unrestricted: the whole record slice lives
	// on the heap at once. Its report is the ground truth the streaming
	// run must reproduce byte for byte.
	_, _, recs, err := cliutil.LoadTraceOpts(path, trace.DecodeOptions{})
	if err != nil {
		fatal(err)
	}
	if int64(len(recs)) != nrecs {
		fatal(fmt.Errorf("materialized %d records, wrote %d", len(recs), nrecs))
	}
	ref, err := dinero.New(dinero.Options{L1: gateConfig})
	if err != nil {
		fatal(err)
	}
	ref.Process(recs)
	want := ref.Report()
	recs, ref = nil, nil
	_ = recs

	// Streaming run under the clamp. HeapAlloc is sampled every few
	// batches; its peak is the gate's memory verdict.
	runtime.GC()
	prev := debug.SetMemoryLimit(limit)
	defer debug.SetMemoryLimit(prev)

	sim, err := dinero.New(dinero.Options{L1: gateConfig})
	if err != nil {
		fatal(err)
	}
	ts, err := cliutil.OpenTraceSource(path, trace.DecodeOptions{})
	if err != nil {
		fatal(err)
	}
	var peak uint64
	var ms runtime.MemStats
	batches := 0
	for {
		batch, berr := ts.NextBatch()
		if berr == io.EOF {
			break
		}
		if berr != nil {
			fatal(berr)
		}
		sim.Process(batch)
		if batches%8 == 0 {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
		}
		batches++
	}
	if err := ts.Close(); err != nil {
		fatal(err)
	}
	got := sim.Report()

	fmt.Printf("memgate: trace %d records / %d bytes, limit %d MiB (%.1fx), peak streaming HeapAlloc %.1f MiB over %d batches\n",
		nrecs, size, *limitMB, float64(size)/float64(limit), float64(peak)/(1<<20), batches)

	fail := false
	if got != want {
		fail = true
		fmt.Fprintf(os.Stderr, "memgate: FAIL: streaming report diverges from materializing reference\n--- want ---\n%s\n--- got ---\n%s\n", want, got)
	}
	if ts.Records() != nrecs || sim.Records() != nrecs {
		fail = true
		fmt.Fprintf(os.Stderr, "memgate: FAIL: streamed %d / simulated %d records, wrote %d\n",
			ts.Records(), sim.Records(), nrecs)
	}
	if int64(peak) > limit {
		fail = true
		fmt.Fprintf(os.Stderr, "memgate: FAIL: peak HeapAlloc %d exceeds the %d-byte limit — streaming path is materializing\n",
			peak, limit)
	}
	if fail {
		os.Exit(1)
	}
	fmt.Println("memgate: PASS")
}

// generate streams synthetic records to path until the container reaches
// target bytes, then seals it with the block-index footer. Addresses
// cycle through a 256 KiB window (real hits and misses at gate geometry);
// function names cycle so the per-block string table does real work.
func generate(path string, target int64, block int) (nrecs, size int64, err error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, 0, err
	}
	cw := &countingWriter{w: f}
	bw := trace.NewBinaryWriter(cw)
	bw.EnableIndex()
	if block > 0 {
		bw.SetBlockRecords(block)
	}
	rec := trace.Record{Size: 4}
	var i uint64
	// Blocks flush as they fill, so cw.n tracks real file growth; the
	// check runs every 1024 records to keep the loop tight.
	for cw.n < target || i == 0 {
		for j := 0; j < 1024; j++ {
			rec.Func = funcNames[i%uint64(len(funcNames))]
			rec.Addr = 0x601000 + (i%4096)*64
			if i%3 == 0 {
				rec.Op = trace.Store
			} else {
				rec.Op = trace.Load
			}
			if err := bw.Write(&rec); err != nil {
				f.Close()
				return 0, 0, err
			}
			i++
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return 0, 0, err
	}
	if err := f.Close(); err != nil {
		return 0, 0, err
	}
	return int64(i), cw.n, nil
}

var funcNames = func() []string {
	names := make([]string, 97)
	for i := range names {
		names[i] = fmt.Sprintf("workload_fn_%02d", i)
	}
	return names
}()

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "memgate:", err)
	os.Exit(2)
}
