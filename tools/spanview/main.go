// Command spanview renders a span JSONL export (-trace-out of any tool,
// or tracedstd's job exporter) as per-trace span trees, with wall/CPU
// timings, attributes and the critical path — the terminal-native answer
// to "where did this request spend its time?".
//
//	spanview spans.jsonl
//	spanview -trace 4bf92f35 spans.jsonl        # one trace, by ID prefix
//	spanview -summary spans.jsonl               # per-name totals only
//	spanview -top 3 spans.jsonl                 # the 3 longest traces
//
// Exit status: 0 on success, 1 when the input cannot be parsed, 2 on
// usage errors.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"tracedst/internal/telemetry"
)

func main() {
	tracePrefix := flag.String("trace", "", "render only traces whose ID starts with this hex prefix")
	top := flag.Int("top", 0, "render only the N longest traces by root wall time (0 = all)")
	summary := flag.Bool("summary", false, "print per-name totals instead of trees")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "spanview: usage: spanview [-trace PREFIX] [-top N] [-summary] SPANS.jsonl")
		os.Exit(2)
	}

	events, err := readEvents(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "spanview: %v\n", err)
		os.Exit(1)
	}
	if *tracePrefix != "" {
		kept := events[:0]
		for _, ev := range events {
			if strings.HasPrefix(ev.Trace, *tracePrefix) {
				kept = append(kept, ev)
			}
		}
		events = kept
	}
	if len(events) == 0 {
		fmt.Println("spanview: no spans")
		return
	}
	if *summary {
		printSummary(events)
		return
	}

	traces := buildTraces(events)
	if *top > 0 && len(traces) > *top {
		traces = traces[:*top]
	}
	for i, tr := range traces {
		if i > 0 {
			fmt.Println()
		}
		tr.print()
	}
}

// readEvents parses one SpanEvent per JSONL line. Blank lines are
// allowed; anything else that fails to decode is an error naming the
// line.
func readEvents(path string) ([]telemetry.SpanEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var events []telemetry.SpanEvent
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var ev telemetry.SpanEvent
		if err := json.Unmarshal([]byte(text), &ev); err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return events, nil
}

// node is one span in a reconstructed trace tree.
type node struct {
	ev       telemetry.SpanEvent
	children []*node
}

// traceTree is one trace's reconstructed spans: roots are spans with no
// parent (or a remote parent that never appears in the export — the
// normal shape for tracedstd jobs joining a client's trace); orphans
// point at a parent span ID that is absent AND are not roots by any
// reading, which flags a torn export.
type traceTree struct {
	id     string
	roots  []*node
	wallNS int64 // max root wall, for -top ordering
	spans  int
}

// buildTraces reconstructs trees per trace ID, longest trace first.
func buildTraces(events []telemetry.SpanEvent) []*traceTree {
	byTrace := map[string][]telemetry.SpanEvent{}
	var order []string
	for _, ev := range events {
		if _, seen := byTrace[ev.Trace]; !seen {
			order = append(order, ev.Trace)
		}
		byTrace[ev.Trace] = append(byTrace[ev.Trace], ev)
	}
	var traces []*traceTree
	for _, id := range order {
		evs := byTrace[id]
		nodes := make(map[string]*node, len(evs))
		for _, ev := range evs {
			nodes[ev.Span] = &node{ev: ev}
		}
		tr := &traceTree{id: id, spans: len(evs)}
		for _, ev := range evs {
			n := nodes[ev.Span]
			if ev.Parent != "" {
				if p, ok := nodes[ev.Parent]; ok && p != n {
					p.children = append(p.children, n)
					continue
				}
			}
			tr.roots = append(tr.roots, n)
		}
		for _, n := range nodes {
			sort.Slice(n.children, func(i, j int) bool {
				return n.children[i].ev.StartNS < n.children[j].ev.StartNS
			})
		}
		sort.Slice(tr.roots, func(i, j int) bool { return tr.roots[i].ev.StartNS < tr.roots[j].ev.StartNS })
		for _, r := range tr.roots {
			if w := r.ev.WallNS(); w > tr.wallNS {
				tr.wallNS = w
			}
		}
		traces = append(traces, tr)
	}
	sort.SliceStable(traces, func(i, j int) bool { return traces[i].wallNS > traces[j].wallNS })
	return traces
}

func (tr *traceTree) print() {
	fmt.Printf("trace %s  (%d spans)\n", tr.id, tr.spans)
	for _, r := range tr.roots {
		printNode(r, "", true, r.ev.WallNS())
	}
	if cp := criticalPath(tr); len(cp) > 1 {
		names := make([]string, len(cp))
		for i, n := range cp {
			names[i] = n.ev.Name
		}
		rootWall := cp[0].ev.WallNS()
		leafWall := cp[len(cp)-1].ev.WallNS()
		pct := 0.0
		if rootWall > 0 {
			pct = 100 * float64(leafWall) / float64(rootWall)
		}
		fmt.Printf("critical path: %s  (%s, %.0f%% of root)\n",
			strings.Join(names, " → "), fmtNS(leafWall), pct)
	}
}

// printNode renders one span line and recurses. rootWall scales the
// percentage column; orphaned roots (parent set but absent) are marked.
func printNode(n *node, prefix string, last bool, rootWall int64) {
	connector := "├─ "
	childPrefix := prefix + "│  "
	if last {
		connector = "└─ "
		childPrefix = prefix + "   "
	}
	if prefix == "" && last {
		connector = ""
		childPrefix = "   "
	}
	wall := n.ev.WallNS()
	line := fmt.Sprintf("%s%s%s  %s", prefix, connector, n.ev.Name, fmtNS(wall))
	if rootWall > 0 && wall <= rootWall {
		line += fmt.Sprintf(" (%2.0f%%)", 100*float64(wall)/float64(rootWall))
	}
	if n.ev.CPUNS > 0 {
		line += fmt.Sprintf(" cpu=%s", fmtNS(n.ev.CPUNS))
	}
	if len(n.ev.Attrs) > 0 {
		keys := make([]string, 0, len(n.ev.Attrs))
		for k := range n.ev.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = k + "=" + n.ev.Attrs[k]
		}
		line += "  {" + strings.Join(parts, " ") + "}"
	}
	if prefix == "" && n.ev.Parent != "" {
		line += "  [orphan: parent " + n.ev.Parent + " not in export]"
	}
	fmt.Println(line)
	for i, c := range n.children {
		printNode(c, childPrefix, i == len(n.children)-1, rootWall)
	}
}

// criticalPath walks from the longest root through each node's
// longest-wall child to a leaf.
func criticalPath(tr *traceTree) []*node {
	if len(tr.roots) == 0 {
		return nil
	}
	cur := tr.roots[0]
	for _, r := range tr.roots[1:] {
		if r.ev.WallNS() > cur.ev.WallNS() {
			cur = r
		}
	}
	path := []*node{cur}
	for len(cur.children) > 0 {
		next := cur.children[0]
		for _, c := range cur.children[1:] {
			if c.ev.WallNS() > next.ev.WallNS() {
				next = c
			}
		}
		path = append(path, next)
		cur = next
	}
	return path
}

// printSummary aggregates spans by name across every trace.
func printSummary(events []telemetry.SpanEvent) {
	type agg struct {
		count  int64
		wallNS int64
		cpuNS  int64
	}
	byName := map[string]*agg{}
	for _, ev := range events {
		a := byName[ev.Name]
		if a == nil {
			a = &agg{}
			byName[ev.Name] = a
		}
		a.count++
		a.wallNS += ev.WallNS()
		a.cpuNS += ev.CPUNS
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return byName[names[i]].wallNS > byName[names[j]].wallNS })
	fmt.Printf("%-28s %8s %12s %12s\n", "span", "count", "wall", "cpu")
	for _, name := range names {
		a := byName[name]
		fmt.Printf("%-28s %8d %12s %12s\n", name, a.count, fmtNS(a.wallNS), fmtNS(a.cpuNS))
	}
}

// fmtNS renders nanoseconds in the most readable unit.
func fmtNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
