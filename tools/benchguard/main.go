// Command benchguard compares two metrics from `go test -bench` output
// and fails when the candidate exceeds the baseline by more than the
// allowed overhead. CI uses it to keep the telemetry layer invisible in
// the sweep profile:
//
//	go test ./internal/experiments/ -run xxx -bench SweepTelemetry -count 3 |
//	  go run ./tools/benchguard -bench SweepTelemetry \
//	    -base noop_ns/op -new enabled_ns/op -max-pct 2
//
// The metrics may be custom (BenchmarkSweepTelemetry reports noop_ns/op
// and enabled_ns/op from one interleaved run, so scheduler noise hits
// both equally) or the standard ns/op of two different benchmarks (pass
// the names via -bench regex and -base/-new as "NAME:ns/op"). With
// -count > 1 the minimum per metric is compared — the standard way to
// strip noise on a shared CI box.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func main() {
	bench := flag.String("bench", "", "only consider benchmark lines containing this substring (empty = all)")
	base := flag.String("base", "", `baseline metric unit, e.g. "noop_ns/op", or "NAME:ns/op" to pick another benchmark's ns/op`)
	cand := flag.String("new", "", "candidate metric unit, same syntax as -base")
	maxPct := flag.Float64("max-pct", 2, "maximum allowed candidate overhead over baseline, in percent")
	minSpeedup := flag.Float64("min-speedup", 0, "require base/new >= this ratio instead of the overhead check (e.g. 3 = candidate at least 3x faster than baseline)")
	flag.Parse()
	if *base == "" || *cand == "" {
		fmt.Fprintln(os.Stderr, "benchguard: usage: go test -bench ... | benchguard -base METRIC -new METRIC [-bench NAME] [-max-pct N]")
		os.Exit(2)
	}

	in := io.Reader(os.Stdin)
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	baseVal := scan(in, *bench, *base, *cand)
	baseNS, candNS := baseVal[*base], baseVal[*cand]
	if baseNS == 0 || candNS == 0 {
		fatal(fmt.Errorf("missing metrics (base %q: %v, new %q: %v)", *base, baseNS, *cand, candNS))
	}
	if *minSpeedup > 0 {
		speedup := baseNS / candNS
		fmt.Printf("benchguard: %s %.0f, %s %.0f: speedup %.2fx (floor %.2fx)\n",
			*base, baseNS, *cand, candNS, speedup, *minSpeedup)
		if speedup < *minSpeedup {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL: %s is only %.2fx faster than %s (need %.2fx)\n",
				*cand, speedup, *base, *minSpeedup)
			os.Exit(1)
		}
		return
	}
	overhead := 100 * (candNS - baseNS) / baseNS
	fmt.Printf("benchguard: %s %.0f, %s %.0f: overhead %+.2f%% (limit %.2f%%)\n",
		*base, baseNS, *cand, candNS, overhead, *maxPct)
	if overhead > *maxPct {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL: %s exceeds %s by %.2f%% (max %.2f%%)\n",
			*cand, *base, overhead, *maxPct)
		os.Exit(1)
	}
}

// scan reads go test -bench output and returns the minimum value seen for
// each requested metric. A metric is either a bare unit ("noop_ns/op"),
// matched on lines passing the -bench filter, or "NAME:unit", matched on
// lines whose benchmark name contains NAME. Result lines look like:
//
//	BenchmarkSweepTelemetry-8  20  19ms ns/op  9528420 noop_ns/op  ...
func scan(r io.Reader, bench string, metrics ...string) map[string]float64 {
	min := map[string]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		for _, m := range metrics {
			unit := m
			if i := strings.IndexByte(m, ':'); i >= 0 {
				if !strings.Contains(name, m[:i]) {
					continue
				}
				unit = m[i+1:]
			} else if bench != "" && !strings.Contains(name, bench) {
				continue
			}
			for i := 2; i+1 < len(fields); i++ {
				if fields[i+1] != unit {
					continue
				}
				v, err := strconv.ParseFloat(fields[i], 64)
				if err == nil && v > 0 && (min[m] == 0 || v < min[m]) {
					min[m] = v
				}
				break
			}
		}
	}
	return min
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(2)
}
