// Command experiments regenerates the paper's figures (3-11): it runs the
// relevant workload, applies the transformation rule where the figure calls
// for one, simulates the paper's cache geometry, and prints the per-set
// histogram (or trace diff) together with measured observations.
//
// Usage:
//
//	experiments -all
//	experiments -fig 11
//	experiments -fig 5 -diff          # include the full side-by-side diff
//	experiments -all -outdir results  # also write CSV/gnuplot per figure
//	experiments -all -parallel 1      # force a serial run
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"tracedst/internal/experiments"
)

func main() {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	fig := fs.Int("fig", 0, "regenerate one figure (3-11)")
	all := fs.Bool("all", false, "regenerate every figure")
	sweeps := fs.Bool("sweep", false, "run the layout sweeps (orig vs transformed across cache sizes)")
	showDiff := fs.Bool("diff", false, "print full side-by-side diffs for diff figures")
	diffWidth := fs.Int("diff-width", 52, "diff column width")
	outdir := fs.String("outdir", "", "also write per-figure CSV/gnuplot/diff files to this directory")
	par := fs.Int("parallel", runtime.NumCPU(), "worker count for sweeps and -all figure regeneration (1 = serial)")
	validate := fs.Bool("validate", false, "run every generated trace through the strict validator before use")
	_ = fs.Parse(os.Args[1:])

	experiments.SetParallelism(*par)
	experiments.SetValidate(*validate)
	if *sweeps {
		ss, err := experiments.Sweeps()
		if err != nil {
			fatal(err)
		}
		for _, s := range ss {
			fmt.Println(s.Table())
		}
		if !*all && *fig == 0 {
			return
		}
	}
	var results []*experiments.Result
	switch {
	case *all:
		rs, err := experiments.All()
		if err != nil {
			fatal(err)
		}
		results = rs
	case *fig != 0:
		r, err := experiments.Run(fmt.Sprintf("fig%d", *fig))
		if err != nil {
			fatal(err)
		}
		results = append(results, r)
	default:
		fmt.Fprintln(os.Stderr, "experiments: need -all, -fig N or -sweep")
		os.Exit(2)
	}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fatal(err)
		}
	}
	for _, r := range results {
		fmt.Printf("==== %s — %s ====\n", r.ID, r.Title)
		if r.Cache != "" {
			fmt.Printf("cache: %s\n", r.Cache)
		}
		fmt.Printf("trace records: %d\n", r.Records)
		if r.Plot != nil {
			fmt.Println()
			fmt.Print(r.Plot.ASCII(36))
			fmt.Println()
			fmt.Print(r.Plot.Summary())
		}
		if r.Diff != nil && *showDiff {
			fmt.Println()
			fmt.Print(r.Diff.SideBySide(*diffWidth))
		}
		fmt.Println()
		for _, n := range r.Notes {
			fmt.Printf("  * %s\n", n)
		}
		fmt.Println()
		if *outdir != "" {
			if err := writeArtifacts(*outdir, r, *diffWidth); err != nil {
				fatal(err)
			}
		}
	}
}

func writeArtifacts(dir string, r *experiments.Result, diffWidth int) error {
	if r.Plot != nil {
		if err := os.WriteFile(filepath.Join(dir, r.ID+".csv"), []byte(r.Plot.CSV()), 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, r.ID+".dat"), []byte(r.Plot.GnuplotData()), 0o644); err != nil {
			return err
		}
		script := r.Plot.GnuplotScript(r.ID + ".dat")
		if err := os.WriteFile(filepath.Join(dir, r.ID+".gp"), []byte(script), 0o644); err != nil {
			return err
		}
	}
	if r.Diff != nil {
		if err := os.WriteFile(filepath.Join(dir, r.ID+".diff"), []byte(r.Diff.SideBySide(diffWidth)), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
