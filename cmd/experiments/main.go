// Command experiments regenerates the paper's figures (3-11): it runs the
// relevant workload, applies the transformation rule where the figure calls
// for one, simulates the paper's cache geometry, and prints the per-set
// histogram (or trace diff) together with measured observations.
//
// Usage:
//
//	experiments -all
//	experiments -fig 11
//	experiments -fig 5 -diff          # include the full side-by-side diff
//	experiments -all -outdir results  # also write CSV/gnuplot per figure
//	experiments -all -parallel 1      # force a serial run
//
// Long batches run resiliently: -checkpoint persists every finished
// sweep/figure atomically, Ctrl-C cancels cleanly (completed work stays on
// disk), and -resume picks up where an interrupted run stopped:
//
//	experiments -sweep -all -checkpoint run1   # interrupted by crash/SIGINT
//	experiments -sweep -all -resume run1       # redoes only unfinished work
//	experiments -all -keep-going               # collect failures, don't stop
//	experiments -all -task-timeout 2m -retries 2 -max-steps 500000000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"tracedst/internal/cliutil"
	"tracedst/internal/dinero"
	"tracedst/internal/experiments"
	"tracedst/internal/simcache"
)

func main() {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	fig := fs.Int("fig", 0, "regenerate one figure (3-11)")
	all := fs.Bool("all", false, "regenerate every figure")
	sweeps := fs.Bool("sweep", false, "run the layout sweeps (orig vs transformed across cache sizes)")
	showDiff := fs.Bool("diff", false, "print full side-by-side diffs for diff figures")
	diffWidth := fs.Int("diff-width", 52, "diff column width")
	outdir := fs.String("outdir", "", "also write per-figure CSV/gnuplot/diff files to this directory")
	par := fs.Int("parallel", runtime.NumCPU(), "worker count for sweeps and -all figure regeneration (1 = serial)")
	validate := fs.Bool("validate", false, "run every generated trace through the strict validator before use")
	ckptDir := fs.String("checkpoint", "", "persist each finished sweep point/figure to this directory (atomic JSON per task)")
	resumeDir := fs.String("resume", "", "resume from this checkpoint directory, skipping finished work (implies -checkpoint)")
	keepGoing := fs.Bool("keep-going", false, "run every task even after failures, then report the full failure list")
	taskTimeout := fs.Duration("task-timeout", 0, "per-task deadline (0 = none)")
	retries := fs.Int("retries", 0, "retry a task failing with a transient I/O error this many times")
	retryBackoff := fs.Duration("retry-backoff", 100*time.Millisecond, "sleep before the first retry, doubled each attempt")
	maxSteps := fs.Int64("max-steps", 0, "per-workload interpreter step budget; runaway workloads fail instead of hanging (0 = default limit)")
	sampleSets := fs.Int("sample-sets", 0, "approximate sweeps: simulate every Nth cache set (power of two, 0/1 = exact)")
	sampleInterval := fs.Int("sample-interval", 0, "approximate sweeps: simulate every Kth window of records (0/1 = exact)")
	sampleWindow := fs.Int("sample-window", 0, "records per -sample-interval window (0 = default)")
	shards := fs.Int("shards", 0, "sharded runs: split each sweep side and figure simulation into N cold shards merged with full attribution (equals flush-at-boundary serial run; 0/1 = off)")
	simCacheDir := fs.String("simcache", "", "content-addressed result cache directory: finished sweep simulations are stored by (trace hash, config, tier) and reused across runs")
	of := cliutil.NewObsFlags(fs, "experiments")
	of.AddProfileFlags(fs)
	_ = fs.Parse(os.Args[1:])

	var err error
	obs, err = of.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}

	experiments.SetParallelism(*par)
	experiments.SetValidate(*validate)
	experiments.SetMaxSteps(*maxSteps)

	// SIGINT/SIGTERM cancel the run context: in-flight simulations stop at
	// their next context poll, finished tasks stay checkpointed, and the
	// exit message names the resume command.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := experiments.RunOptions{
		Workers: *par,
		Policy: experiments.RunPolicy{
			TaskTimeout:  *taskTimeout,
			Retries:      *retries,
			RetryBackoff: *retryBackoff,
			KeepGoing:    *keepGoing,
		},
		Sampling: dinero.Sampling{
			SetFactor: *sampleSets,
			Interval:  *sampleInterval,
			Window:    *sampleWindow,
		},
		Shards: *shards,
	}
	if !opts.Sampling.Exact() {
		obs.Log.Info("sweeps run sampled: results are scaled estimates",
			"sample_sets", *sampleSets, "sample_interval", *sampleInterval)
	}
	if opts.Shards > 1 {
		obs.Log.Info("sweeps and figures run sharded: results equal a flush-at-boundary serial run",
			"shards", opts.Shards)
		experiments.SetFigureShards(opts.Shards)
	}
	if *simCacheDir != "" {
		sc, err := simcache.Open(*simCacheDir, obs.Reg)
		if err != nil {
			obs.Fatal(err)
		}
		opts.SimCache = sc
		obs.Log.Info("simulation result cache enabled", "dir", sc.Dir(), "engine", simcache.EngineVersion)
	}
	dir := *ckptDir
	if *resumeDir != "" {
		if dir != "" && dir != *resumeDir {
			obs.Fatal(fmt.Errorf("-checkpoint %s and -resume %s name different directories", dir, *resumeDir))
		}
		dir = *resumeDir
	}
	if dir != "" {
		ck, err := experiments.OpenCheckpoint(dir)
		if err != nil {
			obs.Fatal(err)
		}
		if n := ck.Len(); n > 0 {
			obs.Log.Info("resuming: finished tasks loaded", "tasks", n, "dir", dir)
		}
		opts.Checkpoint = ck
	}

	exit := 0
	if *sweeps {
		sp := obs.Reg.StartSpan("phase/sweeps")
		ss, err := experiments.SweepsOpts(ctx, opts)
		sp.End()
		if err != nil {
			exit = reportRunError("sweeps", err, dir)
		}
		if err == nil || isKeepGoing(err) {
			for _, s := range ss {
				fmt.Println(s.Table())
			}
		}
		if exit != 0 {
			obs.Exit(exit)
		}
		if !*all && *fig == 0 {
			obs.Close()
			return
		}
	}
	var results []*experiments.Result
	switch {
	case *all:
		sp := obs.Reg.StartSpan("phase/figures")
		rs, err := experiments.AllOpts(ctx, opts)
		sp.End()
		if err != nil {
			exit = reportRunError("figures", err, dir)
			if !isKeepGoing(err) {
				obs.Exit(exit)
			}
		}
		results = rs
	case *fig != 0:
		sp := obs.Reg.StartSpan("phase/figures")
		r, err := experiments.Run(fmt.Sprintf("fig%d", *fig))
		sp.End()
		if err != nil {
			obs.Fatal(err)
		}
		results = append(results, r)
	default:
		obs.Log.Error("need -all, -fig N or -sweep")
		obs.Exit(2)
	}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			obs.Fatal(err)
		}
	}
	for _, r := range results {
		if r == nil {
			continue // failed under -keep-going; already reported
		}
		fmt.Printf("==== %s — %s ====\n", r.ID, r.Title)
		if r.Cache != "" {
			fmt.Printf("cache: %s\n", r.Cache)
		}
		fmt.Printf("trace records: %d\n", r.Records)
		if r.Plot != nil {
			fmt.Println()
			fmt.Print(r.Plot.ASCII(36))
			fmt.Println()
			fmt.Print(r.Plot.Summary())
		}
		if r.Diff != nil && *showDiff {
			fmt.Println()
			fmt.Print(r.Diff.SideBySide(*diffWidth))
		}
		fmt.Println()
		for _, n := range r.Notes {
			fmt.Printf("  * %s\n", n)
		}
		fmt.Println()
		if *outdir != "" {
			if err := writeArtifacts(*outdir, r, *diffWidth); err != nil {
				obs.Fatal(err)
			}
		}
	}
	obs.Exit(exit)
}

// obs is the tool's observability context; set first thing in main so
// every exit path flushes profiles and the metrics manifest.
var obs *cliutil.Obs

// isKeepGoing reports whether err is (or wraps) the structured failure
// list of a -keep-going run, i.e. the run completed with partial results.
func isKeepGoing(err error) bool {
	var tes experiments.TaskErrors
	return errors.As(err, &tes)
}

// reportRunError explains a failed phase and returns the exit code: the
// run keeps its partial output, and interrupted checkpointed runs get a
// resume hint.
func reportRunError(phase string, err error, ckptDir string) int {
	obs.Log.Error(phase+" failed", "err", err.Error())
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		if ckptDir != "" {
			obs.Log.Warn("interrupted; finished tasks are checkpointed — rerun with -resume "+ckptDir, "resume", ckptDir)
		} else {
			obs.Log.Warn("interrupted; rerun with -checkpoint DIR to make runs resumable")
		}
		return 130
	}
	return 1
}

// writeArtifacts writes a figure's CSV/gnuplot/diff files atomically, so a
// crash mid-run never leaves truncated artifacts behind.
func writeArtifacts(dir string, r *experiments.Result, diffWidth int) error {
	if r.Plot != nil {
		if err := cliutil.WriteFile(filepath.Join(dir, r.ID+".csv"), []byte(r.Plot.CSV())); err != nil {
			return err
		}
		if err := cliutil.WriteFile(filepath.Join(dir, r.ID+".dat"), []byte(r.Plot.GnuplotData())); err != nil {
			return err
		}
		script := r.Plot.GnuplotScript(r.ID + ".dat")
		if err := cliutil.WriteFile(filepath.Join(dir, r.ID+".gp"), []byte(script)); err != nil {
			return err
		}
	}
	if r.Diff != nil {
		if err := cliutil.WriteFile(filepath.Join(dir, r.ID+".diff"), []byte(r.Diff.SideBySide(diffWidth))); err != nil {
			return err
		}
	}
	return nil
}
