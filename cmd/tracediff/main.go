// Command tracediff aligns an original trace with a transformed one and
// prints a side-by-side view with change markers (the paper's Figures 5, 8
// and 9) plus summary statistics.
//
// Usage:
//
//	tracediff original.out transformed_trace.out
//	tracediff -stats-only a.out b.out
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"tracedst/internal/cliutil"
	"tracedst/internal/tracediff"
)

func main() {
	fs := flag.NewFlagSet("tracediff", flag.ExitOnError)
	width := fs.Int("w", 52, "column width of each side")
	statsOnly := fs.Bool("stats-only", false, "print only the summary")
	tf := cliutil.NewTraceFlags(fs, "tracediff")
	of := cliutil.NewObsFlags(fs, "tracediff")
	of.AddProfileFlags(fs)
	_ = fs.Parse(os.Args[1:])

	obs, err := of.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracediff:", err)
		os.Exit(2)
	}
	if fs.NArg() != 2 {
		obs.Log.Error("usage: tracediff ORIGINAL TRANSFORMED")
		obs.Exit(2)
	}
	_, _, a, err := cliutil.LoadTraceOpts(fs.Arg(0), tf.Options())
	if err != nil {
		obs.Fatal(err)
	}
	_, _, b, err := cliutil.LoadTraceOpts(fs.Arg(1), tf.Options())
	if err != nil {
		obs.Fatal(err)
	}
	sp := obs.Reg.StartSpan("tracediff/align")
	d := tracediff.New(a, b)
	sp.End()
	if !*statsOnly {
		fmt.Print(d.SideBySide(*width))
		fmt.Println()
	}
	st := d.Stats()
	fmt.Printf("same %d, rewritten %d, inserted %d, deleted %d\n",
		st.Same, st.Rewritten, st.Inserted, st.Deleted)
	cv := d.ChangedVariables()
	if len(cv) > 0 {
		names := make([]string, 0, len(cv))
		for n := range cv {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println("changed variables:")
		for _, n := range names {
			fmt.Printf("  %-28s %d lines\n", n, cv[n])
		}
	}
	obs.Close()
}
