// Command tracedstd serves the trace-analysis pipeline over HTTP: upload
// a trace (text or .glb), get back a managed job that decodes, validates,
// optionally transforms and simulates it, with progress over SSE and the
// report at /jobs/{id}/report.
//
// Usage:
//
//	tracedstd -state /var/lib/tracedstd
//	tracedstd -addr :8477 -workers 4 -rate 20 -max-body 128m
//
// Robustness: uploads are admission-controlled (per-client rate limit →
// 429, body cap → 413, bounded queue → 503), each job runs under a
// per-task timeout/retry/panic-isolation policy, and SIGINT/SIGTERM
// drain gracefully — running jobs are checkpointed back to queued, and a
// restart on the same -state directory resumes them to byte-identical
// reports:
//
//	curl -sT trace.glb 'localhost:8477/jobs?wait=1'
//	curl -s localhost:8477/jobs/j000001/events     # SSE progress
//	curl -s localhost:8477/jobs/j000001/report
//	curl -s localhost:8477/metrics                 # telemetry manifest
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tracedst/internal/cliutil"
	"tracedst/internal/experiments"
	"tracedst/internal/server"
	"tracedst/internal/telemetry"
)

func main() {
	fs := flag.NewFlagSet("tracedstd", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8477", "listen address")
	state := fs.String("state", "", "state directory for job records and spooled uploads (required)")
	workers := fs.Int("workers", 2, "concurrent job executors")
	queue := fs.Int("queue", 16, "pending-job queue depth; submissions beyond it get 503")
	maxBody := fs.String("max-body", "64m", "upload body cap (suffixes k/m allowed); larger uploads get 413")
	rate := fs.Float64("rate", 10, "per-client upload rate limit in requests/second (negative = unlimited)")
	burst := fs.Int("burst", 20, "per-client upload burst")
	bodyTimeout := fs.Duration("body-timeout", 30*time.Second, "deadline for reading one upload body (slow-loris guard)")
	taskTimeout := fs.Duration("task-timeout", 0, "per-job deadline (0 = none)")
	retries := fs.Int("retries", 0, "retry a job failing with a transient I/O error this many times")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for running jobs to checkpoint")
	heartbeat := fs.Duration("heartbeat", 10*time.Second, "SSE keep-alive interval")
	throttle := fs.Duration("throttle", 0, "sleep between record batches of every job (debug aid: makes drain timing deterministic)")
	jobShards := fs.Int("job-shards", 0, "simulate each indexed binary upload (no rule) on N parallel shards so one big job uses all cores; report equals a flush-at-boundary serial run (0/1 = serial)")
	pprofHTTP := fs.Bool("pprof-http", false, "mount net/http/pprof under /debug/pprof/ on the API listener")
	runtimeMetrics := fs.Duration("runtime-metrics", telemetry.DefaultRuntimeSampleInterval, "runtime gauge sampling interval (goroutines, heap, GC); 0 disables")
	cf := cliutil.NewCacheFlags(fs, "l1", "32k", 32, 1)
	of := cliutil.NewObsFlags(fs, "tracedstd")
	of.AddProfileFlags(fs)
	_ = fs.Parse(os.Args[1:])

	obs, err := of.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracedstd:", err)
		os.Exit(2)
	}
	if *state == "" {
		obs.Fatal(errors.New("-state DIR is required (job records and spooled uploads live there)"))
	}
	baseCfg, err := cf.Build()
	if err != nil {
		obs.Fatal(err)
	}
	bodyCap, err := cliutil.ParseSize(*maxBody)
	if err != nil {
		obs.Fatal(fmt.Errorf("-max-body: %w", err))
	}

	srv, err := server.New(server.Config{
		StateDir:     *state,
		Workers:      *workers,
		QueueDepth:   *queue,
		MaxBodyBytes: bodyCap,
		RatePerSec:   *rate,
		Burst:        *burst,
		BodyTimeout:  *bodyTimeout,
		Heartbeat:    *heartbeat,
		Throttle:     *throttle,
		JobShards:    *jobShards,
		Policy: experiments.RunPolicy{
			TaskTimeout: *taskTimeout,
			Retries:     *retries,
		},
		BaseConfig:  baseCfg,
		Reg:         obs.Reg,
		Exporter:    obs.Spans,
		EnablePprof: *pprofHTTP,
		Log:         obs.Log,
	})
	if err != nil {
		obs.Fatal(err)
	}
	if *runtimeMetrics > 0 {
		stopSampler := telemetry.StartRuntimeSampler(obs.Reg, *runtimeMetrics)
		defer stopSampler()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		obs.Fatal(err)
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	obs.Log.Info("listening", "addr", ln.Addr().String(), "state", *state)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			obs.Fatal(err)
		}
	case <-ctx.Done():
		stop()
		obs.Log.Info("draining: refusing new work, checkpointing in-flight jobs", "timeout", *drainTimeout)
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		if err := srv.Shutdown(dctx); err != nil {
			obs.Log.Warn("drain incomplete", "err", err.Error())
		}
		hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
		httpSrv.Shutdown(hctx)
		hcancel()
		cancel()
		obs.Log.Info("stopped; restart with the same -state to resume in-flight jobs", "state", *state)
	}
	obs.Close()
}
