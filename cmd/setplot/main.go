// Command setplot renders per-cache-set hit/miss histograms for a trace —
// the plotting step of the paper's figures. It simulates the trace on the
// requested geometry and emits CSV, gnuplot data or an ASCII chart.
//
// Usage:
//
//	setplot -l1-assoc 64 -l1-repl rr -format ascii trace.out
//	setplot -format csv trace.out > fig.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"tracedst/internal/analysis"
	"tracedst/internal/cliutil"
	"tracedst/internal/dinero"
)

func main() {
	fs := flag.NewFlagSet("setplot", flag.ExitOnError)
	l1 := cliutil.NewCacheFlags(fs, "l1", "32k", 32, 1)
	format := fs.String("format", "ascii", "output format: ascii|csv|gnuplot|summary")
	title := fs.String("title", "per-set cache behaviour", "plot title")
	width := fs.Int("width", 40, "ASCII bar width")
	noSym := fs.Bool("nosym", false, "include unannotated records as a (nosym) series")
	tf := cliutil.NewTraceFlags(fs, "setplot")
	of := cliutil.NewObsFlags(fs, "setplot")
	of.AddProfileFlags(fs)
	_ = fs.Parse(os.Args[1:])

	obs, err := of.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "setplot:", err)
		os.Exit(2)
	}
	if fs.NArg() != 1 {
		obs.Log.Error("need exactly one trace file argument (- for stdin)")
		obs.Exit(2)
	}
	cfg, err := l1.Build()
	if err != nil {
		obs.Fatal(err)
	}
	sim, err := dinero.New(dinero.Options{L1: cfg})
	if err != nil {
		obs.Fatal(err)
	}
	_, _, recs, err := cliutil.LoadTraceOpts(fs.Arg(0), tf.Options())
	if err != nil {
		obs.Fatal(err)
	}
	sp := obs.Reg.StartSpan("setplot/simulate")
	sim.Process(recs)
	sp.End()
	sim.PublishTelemetry(obs.Reg)
	p := analysis.FromSimulator(*title, sim, *noSym)
	switch *format {
	case "ascii":
		fmt.Print(p.ASCII(*width))
	case "csv":
		fmt.Print(p.CSV())
	case "gnuplot":
		fmt.Print(p.GnuplotData())
	case "summary":
		fmt.Print(p.Summary())
	default:
		obs.Fatal(fmt.Errorf("unknown format %q", *format))
	}
	obs.Close()
}
