// Command dsxform is the trace transformation module: it applies a rule
// file (the format of the paper's Listings 5, 8 and 11) to a Gleipnir trace
// and writes the transformed trace (transformed_trace.out by default, as in
// the paper).
//
// Usage:
//
//	dsxform -rules soa2aos.rule trace.out
//	gltrace -w trans1-soa | dsxform -rules soa2aos.rule -o - -
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tracedst/internal/cliutil"
	"tracedst/internal/rules"
	"tracedst/internal/xform"
)

// ruleFiles is a repeatable -rules flag.
type ruleFiles []string

// String implements flag.Value.
func (r *ruleFiles) String() string { return strings.Join(*r, ",") }

// Set implements flag.Value.
func (r *ruleFiles) Set(s string) error {
	*r = append(*r, s)
	return nil
}

func main() {
	fs := flag.NewFlagSet("dsxform", flag.ExitOnError)
	var files ruleFiles
	fs.Var(&files, "rules", "transformation rule file (repeatable; rules must target distinct variables)")
	out := fs.String("o", "transformed_trace.out", "output trace file (- for stdout)")
	shadowAlign := fs.Int64("shadow-align", 0, "override base alignment of relocated structures (0 = automatic)")
	quiet := fs.Bool("q", false, "suppress the summary line")
	tf := cliutil.NewTraceFlags(fs, "dsxform")
	tf.AddFormatFlag(fs)
	of := cliutil.NewObsFlags(fs, "dsxform")
	_ = fs.Parse(os.Args[1:])

	var err error
	obs, err = of.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsxform:", err)
		os.Exit(2)
	}
	if len(files) == 0 || fs.NArg() != 1 {
		obs.Log.Error("usage: dsxform -rules FILE [-rules FILE …] TRACE")
		obs.Exit(2)
	}
	var parsed []rules.Rule
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			obs.Fatal(err)
		}
		r, err := rules.Parse(string(src))
		if err != nil {
			obs.Fatal(fmt.Errorf("%s: %w", f, err))
		}
		parsed = append(parsed, r)
	}
	eng, err := xform.New(xform.Options{ShadowAlign: *shadowAlign}, parsed...)
	if err != nil {
		obs.Fatal(err)
	}
	sp := obs.Reg.StartSpan("dsxform/load")
	h, hasHdr, recs, inFmt, err := cliutil.LoadTraceFormat(fs.Arg(0), tf.Options())
	sp.End()
	if err != nil {
		obs.Fatal(err)
	}
	outFmt, err := tf.OutputFormat(inFmt)
	if err != nil {
		obs.Fatal(err)
	}
	sp = obs.Reg.StartSpan("dsxform/transform")
	outRecs, err := eng.TransformAll(recs)
	sp.End()
	if err != nil {
		obs.Fatal(err)
	}
	// A headerless input stays headerless, so byte-level round trips
	// through tracediff keep working; the container format mirrors the
	// input unless -format overrides it.
	if err := cliutil.WriteTraceFormat(*out, h, hasHdr, outRecs, outFmt); err != nil {
		obs.Fatal(err)
	}
	if !*quiet {
		st := eng.Stats()
		var desc []string
		for _, r := range parsed {
			desc = append(desc, fmt.Sprintf("%s %s→%s", r.Kind(), r.InRoot(), r.OutRoot()))
		}
		obs.Log.Info(strings.Join(desc, ", "),
			"records", st.Total, "rewritten", st.Matched, "inserted", st.Inserted, "passed", st.Passed)
	}
	obs.Close()
}

// obs is the tool's observability context, set first thing in main.
var obs *cliutil.Obs
