// Command dsxform is the trace transformation module: it applies a rule
// file (the format of the paper's Listings 5, 8 and 11) to a Gleipnir trace
// and writes the transformed trace (transformed_trace.out by default, as in
// the paper).
//
// Usage:
//
//	dsxform -rules soa2aos.rule trace.out
//	gltrace -w trans1-soa | dsxform -rules soa2aos.rule -o - -
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tracedst/internal/cliutil"
	"tracedst/internal/rules"
	"tracedst/internal/trace"
	"tracedst/internal/xform"
)

// ruleFiles is a repeatable -rules flag.
type ruleFiles []string

// String implements flag.Value.
func (r *ruleFiles) String() string { return strings.Join(*r, ",") }

// Set implements flag.Value.
func (r *ruleFiles) Set(s string) error {
	*r = append(*r, s)
	return nil
}

func main() {
	fs := flag.NewFlagSet("dsxform", flag.ExitOnError)
	var files ruleFiles
	fs.Var(&files, "rules", "transformation rule file (repeatable; rules must target distinct variables)")
	out := fs.String("o", "transformed_trace.out", "output trace file (- for stdout)")
	shadowAlign := fs.Int64("shadow-align", 0, "override base alignment of relocated structures (0 = automatic)")
	quiet := fs.Bool("q", false, "suppress the summary line")
	index := fs.Bool("glb-index", false, "append the block-index footer to binary output (seekable/shardable without a scan)")
	tf := cliutil.NewTraceFlags(fs, "dsxform")
	tf.AddFormatFlag(fs)
	of := cliutil.NewObsFlags(fs, "dsxform")
	of.AddProfileFlags(fs)
	_ = fs.Parse(os.Args[1:])

	var err error
	obs, err = of.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsxform:", err)
		os.Exit(2)
	}
	if len(files) == 0 || fs.NArg() != 1 {
		obs.Log.Error("usage: dsxform -rules FILE [-rules FILE …] TRACE")
		obs.Exit(2)
	}
	var parsed []rules.Rule
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			obs.Fatal(err)
		}
		r, err := rules.Parse(string(src))
		if err != nil {
			obs.Fatal(fmt.Errorf("%s: %w", f, err))
		}
		parsed = append(parsed, r)
	}
	eng, err := xform.New(xform.Options{ShadowAlign: *shadowAlign}, parsed...)
	if err != nil {
		obs.Fatal(err)
	}
	// Stream decode → transform → encode, holding one batch live at a time:
	// the pipeline rewrites traces larger than RAM in constant memory. A
	// headerless input stays headerless, so byte-level round trips through
	// tracediff keep working; the container format mirrors the input unless
	// -format overrides it.
	sp := obs.Reg.StartSpan("dsxform/transform")
	ts, err := cliutil.OpenTraceSource(fs.Arg(0), tf.Options())
	if err != nil {
		obs.Fatal(err)
	}
	outFmt, err := tf.OutputFormat(ts.Format())
	if err != nil {
		ts.Close()
		obs.Fatal(err)
	}
	werr := cliutil.WriteTraceStream(*out, cliutil.WriterOptions{Format: outFmt, Index: *index},
		func(w trace.RecordWriter) error { return eng.RunSource(ts, w) })
	cerr := ts.Close()
	sp.End()
	if werr != nil {
		obs.Fatal(werr)
	}
	if cerr != nil {
		obs.Fatal(cerr)
	}
	if !*quiet {
		st := eng.Stats()
		var desc []string
		for _, r := range parsed {
			desc = append(desc, fmt.Sprintf("%s %s→%s", r.Kind(), r.InRoot(), r.OutRoot()))
		}
		obs.Log.Info(strings.Join(desc, ", "),
			"records", st.Total, "rewritten", st.Matched, "inserted", st.Inserted, "passed", st.Passed)
	}
	obs.Close()
}

// obs is the tool's observability context, set first thing in main.
var obs *cliutil.Obs
