// Command gltrace is the Gleipnir-equivalent tracer: it executes a miniC
// program (a built-in workload or a source file) and writes the annotated
// memory trace.
//
// Usage:
//
//	gltrace -w trans1-soa -o trace.out
//	gltrace -src prog.c -D LEN=64 -trace-all -o -
//	gltrace -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"tracedst/internal/cliutil"
	"tracedst/internal/trace"
	"tracedst/internal/tracer"
	"tracedst/internal/workloads"
)

func main() {
	fs := flag.NewFlagSet("gltrace", flag.ExitOnError)
	workload := fs.String("w", "", "built-in workload name (see -list)")
	srcFile := fs.String("src", "", "miniC source file to trace instead of a built-in workload")
	out := fs.String("o", "-", "output trace file (- for stdout)")
	pid := fs.Int("pid", 0, "PID to put in the START header (0 = default)")
	traceAll := fs.Bool("trace-all", false, "trace from program start even without GLEIPNIR markers")
	list := fs.Bool("list", false, "list built-in workloads and exit")
	onlyFunc := fs.String("only-func", "", "keep only records executed by this function")
	onlyVar := fs.String("only-var", "", "keep only records of this root variable")
	onlyOps := fs.String("only-ops", "", "keep only these access types, e.g. LS")
	format := fs.String("format", "gleipnir", "output format: gleipnir (alias text) | binary (block-framed .glb) | din (classic DineroIV input)")
	index := fs.Bool("glb-index", false, "append the block-index footer to binary output (seekable/shardable without a scan)")
	defines := cliutil.Defines{}
	fs.Var(defines, "D", "macro definition NAME=VALUE (repeatable)")
	of := cliutil.NewObsFlags(fs, "gltrace")
	of.AddProfileFlags(fs)
	_ = fs.Parse(os.Args[1:])

	var err error
	obs, err = of.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gltrace:", err)
		os.Exit(2)
	}
	if *list {
		names := make([]string, 0, len(workloads.Named))
		for n := range workloads.Named {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("%-14s %s\n", n, workloads.Named[n].About)
		}
		obs.Close()
		return
	}

	src, defs, err := resolveSource(*workload, *srcFile, defines)
	if err != nil {
		obs.Fatal(err)
	}
	sp := obs.Reg.StartSpan("gltrace/trace")
	res, err := tracer.Run(src, defs, tracer.Options{PID: *pid, TraceAll: *traceAll})
	sp.End()
	if err != nil {
		obs.Fatal(err)
	}
	records := res.Records
	var preds []trace.Pred
	if *onlyFunc != "" {
		preds = append(preds, trace.ByFunc(*onlyFunc))
	}
	if *onlyVar != "" {
		preds = append(preds, trace.ByVar(*onlyVar))
	}
	if *onlyOps != "" {
		ops := make([]trace.Op, 0, len(*onlyOps))
		for i := 0; i < len(*onlyOps); i++ {
			op := trace.Op((*onlyOps)[i])
			if !op.Valid() {
				obs.Fatal(fmt.Errorf("bad op %q in -only-ops", (*onlyOps)[i]))
			}
			ops = append(ops, op)
		}
		preds = append(preds, trace.ByOp(ops...))
	}
	if len(preds) > 0 {
		records = trace.Filter(records, trace.And(preds...))
	}
	switch *format {
	case "gleipnir", "text":
		if err := cliutil.WriteTraceFormat(*out, res.Header, true, records, trace.FormatText); err != nil {
			obs.Fatal(err)
		}
	case "binary", "glb":
		err := cliutil.WriteTraceStream(*out, cliutil.WriterOptions{Format: trace.FormatBinary, Index: *index},
			func(w trace.RecordWriter) error {
				if err := w.WriteHeader(res.Header); err != nil {
					return err
				}
				for i := range records {
					if err := w.Write(&records[i]); err != nil {
						return err
					}
				}
				return nil
			})
		if err != nil {
			obs.Fatal(err)
		}
	case "din":
		err := cliutil.WriteTo(*out, func(w io.Writer) error {
			_, werr := trace.WriteDin(w, records)
			return werr
		})
		if err != nil {
			obs.Fatal(err)
		}
	default:
		obs.Fatal(fmt.Errorf("unknown format %q", *format))
	}
	obs.Log.Info("trace written", "records", len(records), "returned", res.Return)
	obs.Close()
}

// obs is the tool's observability context, set first thing in main.
var obs *cliutil.Obs

func resolveSource(workload, srcFile string, defines cliutil.Defines) (string, map[string]string, error) {
	switch {
	case workload != "" && srcFile != "":
		return "", nil, fmt.Errorf("gltrace: -w and -src are mutually exclusive")
	case workload != "":
		w, ok := workloads.Named[workload]
		if !ok {
			return "", nil, fmt.Errorf("gltrace: unknown workload %q (try -list)", workload)
		}
		defs := map[string]string{}
		for k, v := range w.Defines {
			defs[k] = v
		}
		for k, v := range defines {
			defs[k] = v
		}
		return w.Source, defs, nil
	case srcFile != "":
		b, err := os.ReadFile(srcFile)
		if err != nil {
			return "", nil, err
		}
		return string(b), defines, nil
	default:
		return "", nil, fmt.Errorf("gltrace: need -w or -src (see -list)")
	}
}
