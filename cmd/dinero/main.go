// Command dinero is the modified-DineroIV cache simulator: it consumes a
// Gleipnir trace and reports overall, per-function, per-variable and
// per-set statistics, plus the structure-conflict matrix.
//
// Usage:
//
//	dinero -l1-size 32k -l1-bsize 32 -l1-assoc 1 trace.out
//	gltrace -w trans3-cont | dinero -l1-assoc 64 -l1-repl rr -plot -
//
// Multi-configuration mode evaluates several geometries in one pass over
// the trace (decode, translation and symbol resolution are shared); with
// -sample-sets/-sample-interval the pass is approximate and prints scaled
// estimates instead of full reports:
//
//	dinero -config size=8k -config size=16k -config size=32k,assoc=2 trace.out
//	dinero -configs sweep.cfgs -sample-sets 8 trace.out
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"tracedst/internal/analysis"
	"tracedst/internal/cache"
	"tracedst/internal/cliutil"
	"tracedst/internal/dinero"
	"tracedst/internal/pagemap"
	"tracedst/internal/trace"
)

func main() {
	fs := flag.NewFlagSet("dinero", flag.ExitOnError)
	l1 := cliutil.NewCacheFlags(fs, "l1", "32k", 32, 1)
	l2 := cliutil.NewCacheFlags(fs, "l2", "256k", 64, 8)
	withL2 := fs.Bool("with-l2", false, "simulate a second cache level")
	plot := fs.Bool("plot", false, "print the per-set ASCII plot")
	csv := fs.String("csv", "", "write the per-set CSV to this file")
	gnuplot := fs.String("gnuplot", "", "write gnuplot .dat series to this file")
	noSym := fs.Bool("nosym", false, "include unannotated records as a (nosym) series")
	var cfgSpecs cliutil.Repeated
	fs.Var(&cfgSpecs, "config", "extra cache config as key=value overrides of the -l1 flags, e.g. size=8k,assoc=2 (repeatable; enables single-pass multi-config mode)")
	configsFile := fs.String("configs", "", "file with one -config spec per line (# comments, - for stdin)")
	sampleSets := fs.Int("sample-sets", 0, "approximate: simulate every Nth cache set, scale stats (power of two, 0/1 = exact)")
	sampleInterval := fs.Int("sample-interval", 0, "approximate: simulate every Kth window of records, scale stats (0/1 = exact)")
	sampleWindow := fs.Int("sample-window", 0, "records per -sample-interval window (0 = default)")
	stream := fs.Bool("stream", false, "stream the trace batch-by-batch in constant memory instead of materializing it")
	shards := fs.Int("shards", 0, "sharded streaming over a binary .glb file: N workers simulate disjoint block ranges and merge (0 = off, -1 = one per CPU; implies -stream semantics)")
	phys := fs.String("phys", "off", "physical indexing: off | seq | shuffled (4 KiB pages)")
	physSeed := fs.Uint64("phys-seed", 0, "seed for the shuffled frame permutation")
	tf := cliutil.NewTraceFlags(fs, "dinero")
	of := cliutil.NewObsFlags(fs, "dinero")
	of.AddProfileFlags(fs)
	_ = fs.Parse(os.Args[1:])

	var err error
	obs, err = of.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dinero:", err)
		os.Exit(2)
	}
	if fs.NArg() != 1 {
		obs.Log.Error("need exactly one trace file argument (- for stdin)")
		obs.Exit(2)
	}
	cfg1, err := l1.Build()
	if err != nil {
		obs.Fatal(err)
	}
	opts := dinero.Options{L1: cfg1}
	switch *phys {
	case "off":
	case "seq":
		opts.Translate = pagemap.New(pagemap.Config{Policy: pagemap.Sequential}).MustTranslate
	case "shuffled":
		opts.Translate = pagemap.New(pagemap.Config{Policy: pagemap.Shuffled, Seed: *physSeed}).MustTranslate
	default:
		obs.Fatal(fmt.Errorf("bad -phys %q (off|seq|shuffled)", *phys))
	}
	if *withL2 {
		cfg2, err := l2.Build()
		if err != nil {
			obs.Fatal(err)
		}
		opts.L2 = &cfg2
	}
	sampling := dinero.Sampling{SetFactor: *sampleSets, Interval: *sampleInterval, Window: *sampleWindow}
	if len(cfgSpecs) > 0 || *configsFile != "" || !sampling.Exact() {
		if *shards != 0 && !sampling.Exact() {
			obs.Fatal(fmt.Errorf("-shards needs exact sampling (interval state spans the whole stream)"))
		}
		runMulti(fs.Arg(0), opts, cfgSpecs, *configsFile, sampling, tf,
			*plot || *csv != "" || *gnuplot != "", *stream, *shards)
		return
	}
	var sim *dinero.Simulator
	switch {
	case *shards != 0:
		// SIGINT/SIGTERM cancel the shard context: every worker stops at
		// its next record batch instead of the process dying mid-merge.
		ctx, stop := signal.NotifyContext(obs.Ctx, os.Interrupt, syscall.SIGTERM)
		defer stop()
		sp, _ := obs.Reg.StartSpanCtx(ctx, "dinero/simulate-sharded")
		tr, err := trace.OpenIndexed(fs.Arg(0))
		if err != nil {
			obs.Fatal(err)
		}
		res, err := dinero.SimulateShardedContext(ctx, tr, opts, *shards, tf.Options())
		if err != nil {
			tr.Close()
			obs.Fatal(err)
		}
		sim = res.Sim
		cliutil.PublishIndexedDecode(tr, sim.Records())
		if err := tr.Close(); err != nil {
			obs.Fatal(err)
		}
		sp.End()
		res.PublishShardTelemetry(obs.Reg)
	case *stream:
		sim, err = dinero.New(opts)
		if err != nil {
			obs.Fatal(err)
		}
		sp, sctx := obs.Reg.StartSpanCtx(obs.Ctx, "dinero/simulate-stream")
		ts, err := cliutil.OpenTraceSourceCtx(sctx, fs.Arg(0), tf.Options())
		if err != nil {
			obs.Fatal(err)
		}
		serr := sim.ProcessSourceCtx(sctx, ts)
		cerr := ts.Close()
		sp.End()
		if serr != nil {
			obs.Fatal(serr)
		}
		if cerr != nil {
			obs.Fatal(cerr)
		}
		sim.PublishTelemetry(obs.Reg)
	default:
		sim, err = dinero.New(opts)
		if err != nil {
			obs.Fatal(err)
		}
		sp, _ := obs.Reg.StartSpanCtx(obs.Ctx, "dinero/load")
		_, _, recs, err := cliutil.LoadTraceOpts(fs.Arg(0), tf.Options())
		sp.End()
		if err != nil {
			obs.Fatal(err)
		}
		sp, _ = obs.Reg.StartSpanCtx(obs.Ctx, "dinero/simulate")
		sim.Process(recs)
		sp.End()
		sim.PublishTelemetry(obs.Reg)
	}
	fmt.Print(sim.Report())

	p := analysis.FromSimulator("per-set cache behaviour", sim, *noSym)
	if *plot {
		fmt.Println()
		fmt.Print(p.ASCII(40))
		fmt.Println()
		fmt.Print(p.Summary())
	}
	if *csv != "" {
		if err := cliutil.WriteFile(*csv, []byte(p.CSV())); err != nil {
			obs.Fatal(err)
		}
	}
	if *gnuplot != "" {
		if err := cliutil.WriteFile(*gnuplot, []byte(p.GnuplotData())); err != nil {
			obs.Fatal(err)
		}
	}
	obs.Close()
}

// obs is the tool's observability context; set first thing in main so
// every error path can flush profiles and the metrics manifest.
var obs *cliutil.Obs

// runMulti is the single-pass multi-configuration mode: the trace is
// decoded, translated and symbol-resolved once, and every config (the -l1
// flags as base, overridden per -config/-configs spec) simulates from that
// shared stream. Reports print back-to-back in config order and are
// byte-identical to independent runs when sampling is exact. With -shards
// the pass runs sharded over a .glb block index on the full-attribution
// merged engine; reports then equal a serial run with Flush at each shard
// boundary.
func runMulti(path string, opts dinero.Options, specs []string, specFile string, sampling dinero.Sampling, tf *cliutil.TraceFlags, wantsPlot, stream bool, shards int) {
	if wantsPlot {
		obs.Fatal(fmt.Errorf("-plot/-csv/-gnuplot need a single exact config"))
	}
	cfgs := []cache.Config{}
	if specFile != "" {
		fromFile, err := cliutil.LoadConfigSpecs(specFile, opts.L1)
		if err != nil {
			obs.Fatal(err)
		}
		cfgs = fromFile
	}
	for _, spec := range specs {
		cfg, err := cliutil.ParseConfigSpec(opts.L1, spec)
		if err != nil {
			obs.Fatal(err)
		}
		cfgs = append(cfgs, cfg)
	}
	if len(cfgs) == 0 {
		cfgs = append(cfgs, opts.L1) // sampling-only mode: base config alone
	}
	if shards != 0 {
		// SIGINT/SIGTERM cancel the shard context, as in the single-config
		// sharded path.
		ctx, stop := signal.NotifyContext(obs.Ctx, os.Interrupt, syscall.SIGTERM)
		defer stop()
		sp, _ := obs.Reg.StartSpanCtx(ctx, "dinero/multisim-sharded")
		tr, err := trace.OpenIndexed(path)
		if err != nil {
			obs.Fatal(err)
		}
		res, err := dinero.MultiSimShardedContext(ctx, tr, dinero.MultiOptions{
			Configs:   cfgs,
			L2:        opts.L2,
			Translate: opts.Translate,
		}, shards, tf.Options())
		if err != nil {
			tr.Close()
			obs.Fatal(err)
		}
		cliutil.PublishIndexedDecode(tr, res.Sim.Records())
		if err := tr.Close(); err != nil {
			obs.Fatal(err)
		}
		sp.End()
		res.PublishShardTelemetry(obs.Reg)
		printMultiReports(res.Sim, sampling)
		obs.Close()
		return
	}
	ms, err := dinero.NewMulti(dinero.MultiOptions{
		Configs:   cfgs,
		L2:        opts.L2,
		Translate: opts.Translate,
		Sampling:  sampling,
	})
	if err != nil {
		obs.Fatal(err)
	}
	if stream {
		sp, sctx := obs.Reg.StartSpanCtx(obs.Ctx, "dinero/simulate-stream")
		ts, err := cliutil.OpenTraceSourceCtx(sctx, path, tf.Options())
		if err != nil {
			obs.Fatal(err)
		}
		serr := ms.ProcessSourceCtx(sctx, ts)
		cerr := ts.Close()
		sp.End()
		if serr != nil {
			obs.Fatal(serr)
		}
		if cerr != nil {
			obs.Fatal(cerr)
		}
	} else {
		sp, _ := obs.Reg.StartSpanCtx(obs.Ctx, "dinero/load")
		_, _, recs, err := cliutil.LoadTraceOpts(path, tf.Options())
		sp.End()
		if err != nil {
			obs.Fatal(err)
		}
		sp, _ = obs.Reg.StartSpanCtx(obs.Ctx, "dinero/simulate")
		ms.Process(recs)
		sp.End()
	}
	ms.PublishTelemetry(obs.Reg)
	printMultiReports(ms, sampling)
	obs.Close()
}

// printMultiReports prints every config's banner plus report (exact) or
// scaled-estimate line (sampled).
func printMultiReports(ms *dinero.MultiSim, sampling dinero.Sampling) {
	for i := 0; i < ms.NumConfigs(); i++ {
		cfg := ms.Config(i)
		fmt.Printf("==== config %d/%d: %s ====\n", i+1, ms.NumConfigs(), describeConfig(cfg))
		if sampling.Exact() {
			fmt.Print(ms.Report(i))
			continue
		}
		st := ms.ScaledStats(i)
		fmt.Printf("sampled estimate (scale %.4g): accesses %d, misses %d, miss ratio %.4f\n",
			ms.Scale(i), st.Accesses(), st.Misses(), st.MissRatio())
	}
}

// describeConfig renders a config header for multi-config output.
func describeConfig(cfg cache.Config) string {
	name := cfg.Name
	if name == "" {
		name = "l1"
	}
	return fmt.Sprintf("%s size=%d bsize=%d assoc=%d repl=%s",
		name, cfg.Size, cfg.BlockSize, cfg.Assoc, cfg.Repl)
}
