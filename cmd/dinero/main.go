// Command dinero is the modified-DineroIV cache simulator: it consumes a
// Gleipnir trace and reports overall, per-function, per-variable and
// per-set statistics, plus the structure-conflict matrix.
//
// Usage:
//
//	dinero -l1-size 32k -l1-bsize 32 -l1-assoc 1 trace.out
//	gltrace -w trans3-cont | dinero -l1-assoc 64 -l1-repl rr -plot -
package main

import (
	"flag"
	"fmt"
	"os"

	"tracedst/internal/analysis"
	"tracedst/internal/cliutil"
	"tracedst/internal/dinero"
	"tracedst/internal/pagemap"
)

func main() {
	fs := flag.NewFlagSet("dinero", flag.ExitOnError)
	l1 := cliutil.NewCacheFlags(fs, "l1", "32k", 32, 1)
	l2 := cliutil.NewCacheFlags(fs, "l2", "256k", 64, 8)
	withL2 := fs.Bool("with-l2", false, "simulate a second cache level")
	plot := fs.Bool("plot", false, "print the per-set ASCII plot")
	csv := fs.String("csv", "", "write the per-set CSV to this file")
	gnuplot := fs.String("gnuplot", "", "write gnuplot .dat series to this file")
	noSym := fs.Bool("nosym", false, "include unannotated records as a (nosym) series")
	phys := fs.String("phys", "off", "physical indexing: off | seq | shuffled (4 KiB pages)")
	physSeed := fs.Uint64("phys-seed", 0, "seed for the shuffled frame permutation")
	tf := cliutil.NewTraceFlags(fs, "dinero")
	of := cliutil.NewObsFlags(fs, "dinero")
	of.AddProfileFlags(fs)
	_ = fs.Parse(os.Args[1:])

	var err error
	obs, err = of.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dinero:", err)
		os.Exit(2)
	}
	if fs.NArg() != 1 {
		obs.Log.Error("need exactly one trace file argument (- for stdin)")
		obs.Exit(2)
	}
	cfg1, err := l1.Build()
	if err != nil {
		obs.Fatal(err)
	}
	opts := dinero.Options{L1: cfg1}
	switch *phys {
	case "off":
	case "seq":
		opts.Translate = pagemap.New(pagemap.Config{Policy: pagemap.Sequential}).MustTranslate
	case "shuffled":
		opts.Translate = pagemap.New(pagemap.Config{Policy: pagemap.Shuffled, Seed: *physSeed}).MustTranslate
	default:
		obs.Fatal(fmt.Errorf("bad -phys %q (off|seq|shuffled)", *phys))
	}
	if *withL2 {
		cfg2, err := l2.Build()
		if err != nil {
			obs.Fatal(err)
		}
		opts.L2 = &cfg2
	}
	sim, err := dinero.New(opts)
	if err != nil {
		obs.Fatal(err)
	}
	sp := obs.Reg.StartSpan("dinero/load")
	_, _, recs, err := cliutil.LoadTraceOpts(fs.Arg(0), tf.Options())
	sp.End()
	if err != nil {
		obs.Fatal(err)
	}
	sp = obs.Reg.StartSpan("dinero/simulate")
	sim.Process(recs)
	sp.End()
	sim.PublishTelemetry(obs.Reg)
	fmt.Print(sim.Report())

	p := analysis.FromSimulator("per-set cache behaviour", sim, *noSym)
	if *plot {
		fmt.Println()
		fmt.Print(p.ASCII(40))
		fmt.Println()
		fmt.Print(p.Summary())
	}
	if *csv != "" {
		if err := cliutil.WriteFile(*csv, []byte(p.CSV())); err != nil {
			obs.Fatal(err)
		}
	}
	if *gnuplot != "" {
		if err := cliutil.WriteFile(*gnuplot, []byte(p.GnuplotData())); err != nil {
			obs.Fatal(err)
		}
	}
	obs.Close()
}

// obs is the tool's observability context; set first thing in main so
// every error path can flush profiles and the metrics manifest.
var obs *cliutil.Obs
