// Command dsx runs the paper's whole analysis cycle (Fig 2) in one
// invocation — the "computational steering" loop: trace a program, apply a
// layout rule, simulate both traces on the same cache, and print a
// before/after comparison.
//
// Usage:
//
//	dsx -w trans1-soa -rules soa2aos.rule
//	dsx -src prog.c -D LEN=64 -rules hotcold.rule -l1-size 2k -l1-assoc 2
//	dsx -w trans3-cont -rules stride.rule -l1-assoc 64 -l1-repl rr -diff
package main

import (
	"flag"
	"fmt"
	"os"

	"tracedst/internal/analysis"
	"tracedst/internal/cache"
	"tracedst/internal/cliutil"
	"tracedst/internal/dinero"
	"tracedst/internal/rules"
	"tracedst/internal/trace"
	"tracedst/internal/tracediff"
	"tracedst/internal/tracer"
	"tracedst/internal/workloads"
	"tracedst/internal/xform"
)

func main() {
	fs := flag.NewFlagSet("dsx", flag.ExitOnError)
	workload := fs.String("w", "", "built-in workload name (see gltrace -list)")
	srcFile := fs.String("src", "", "miniC source file")
	ruleFile := fs.String("rules", "", "transformation rule file (required)")
	l1 := cliutil.NewCacheFlags(fs, "l1", "32k", 32, 1)
	showDiff := fs.Bool("diff", false, "print the trace diff")
	saveXform := fs.String("o", "", "also write the transformed trace to this file")
	outFormat := fs.String("format", "auto", "trace format for -o: auto (binary for .glb paths) | text | binary")
	defines := cliutil.Defines{}
	fs.Var(defines, "D", "macro definition NAME=VALUE (repeatable)")
	of := cliutil.NewObsFlags(fs, "dsx")
	of.AddProfileFlags(fs)
	_ = fs.Parse(os.Args[1:])

	var err error
	obs, err = of.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsx:", err)
		os.Exit(2)
	}
	if *ruleFile == "" {
		obs.Fatal(fmt.Errorf("need -rules FILE"))
	}
	src, defs, err := source(*workload, *srcFile, defines)
	if err != nil {
		obs.Fatal(err)
	}
	cfg, err := l1.Build()
	if err != nil {
		obs.Fatal(err)
	}

	// 1. Trace.
	sp := obs.Reg.StartSpan("dsx/trace")
	res, err := tracer.Run(src, defs, tracer.Options{})
	sp.End()
	if err != nil {
		obs.Fatal(err)
	}

	// 2. Transform.
	ruleSrc, err := os.ReadFile(*ruleFile)
	if err != nil {
		obs.Fatal(err)
	}
	rule, err := rules.Parse(string(ruleSrc))
	if err != nil {
		obs.Fatal(err)
	}
	eng, err := xform.New(xform.Options{}, rule)
	if err != nil {
		obs.Fatal(err)
	}
	sp = obs.Reg.StartSpan("dsx/transform")
	transformed, err := eng.TransformAll(res.Records)
	sp.End()
	if err != nil {
		obs.Fatal(err)
	}
	st := eng.Stats()
	fmt.Printf("rule: %s  %s → %s\n", rule.Kind(), rule.InRoot(), rule.OutRoot())
	fmt.Printf("trace: %d records; %d rewritten, %d inserted, %d passed through\n\n",
		st.Total, st.Matched, st.Inserted, st.Passed)

	if *saveXform != "" {
		f, err := cliutil.ParseTraceFormat(*outFormat)
		if err != nil {
			obs.Fatal(err)
		}
		if err := cliutil.WriteTraceFormat(*saveXform, res.Header, true, transformed, f); err != nil {
			obs.Fatal(err)
		}
	}

	// 3. Diff summary (full diff with -diff).
	d := tracediff.New(res.Records, transformed)
	ds := d.Stats()
	fmt.Printf("diff: %d same, %d rewritten, %d inserted, %d deleted\n\n",
		ds.Same, ds.Rewritten, ds.Inserted, ds.Deleted)
	if *showDiff {
		fmt.Print(d.SideBySide(52))
		fmt.Println()
	}

	// 4. Simulate both sides on the same cache.
	sp = obs.Reg.StartSpan("dsx/simulate")
	before, err := simulate(res.Records, cfg)
	if err != nil {
		obs.Fatal(err)
	}
	after, err := simulate(transformed, cfg)
	sp.End()
	if err != nil {
		obs.Fatal(err)
	}
	bs, as := before.L1().Stats(), after.L1().Stats()
	fmt.Printf("cache: %d B, %d-byte blocks, %d-way %s\n\n", cfg.Size, cfg.BlockSize, cfg.Assoc, cfg.Repl)
	fmt.Printf("%-14s %10s %10s %8s\n", "", "accesses", "misses", "miss%")
	fmt.Printf("%-14s %10d %10d %7.2f%%\n", "original", bs.Accesses(), bs.Misses(), 100*bs.MissRatio())
	fmt.Printf("%-14s %10d %10d %7.2f%%\n", "transformed", as.Accesses(), as.Misses(), 100*as.MissRatio())
	switch {
	case as.Misses() < bs.Misses():
		fmt.Printf("\n→ transformed layout saves %d misses (%.1f%%)\n",
			bs.Misses()-as.Misses(), 100*float64(bs.Misses()-as.Misses())/float64(bs.Misses()))
	case as.Misses() > bs.Misses():
		fmt.Printf("\n→ transformed layout costs %d extra misses\n", as.Misses()-bs.Misses())
	default:
		fmt.Printf("\n→ miss counts unchanged\n")
	}

	// 5. Per-set occupancy of the structures involved.
	fmt.Println()
	fmt.Println("original per-set occupancy:")
	fmt.Print(analysis.FromSimulator("", before, false).Summary())
	fmt.Println()
	fmt.Println("transformed per-set occupancy:")
	fmt.Print(analysis.FromSimulator("", after, false).Summary())
	obs.Close()
}

func source(workload, srcFile string, defines cliutil.Defines) (string, map[string]string, error) {
	switch {
	case workload != "" && srcFile != "":
		return "", nil, fmt.Errorf("dsx: -w and -src are mutually exclusive")
	case workload != "":
		w, ok := workloads.Named[workload]
		if !ok {
			return "", nil, fmt.Errorf("dsx: unknown workload %q", workload)
		}
		defs := map[string]string{}
		for k, v := range w.Defines {
			defs[k] = v
		}
		for k, v := range defines {
			defs[k] = v
		}
		return w.Source, defs, nil
	case srcFile != "":
		b, err := os.ReadFile(srcFile)
		if err != nil {
			return "", nil, err
		}
		return string(b), defines, nil
	default:
		return "", nil, fmt.Errorf("dsx: need -w or -src")
	}
}

func simulate(recs []trace.Record, cfg cache.Config) (*dinero.Simulator, error) {
	sim, err := dinero.New(dinero.Options{L1: cfg})
	if err != nil {
		return nil, err
	}
	sim.Process(recs)
	sim.PublishTelemetry(obs.Reg)
	return sim, nil
}

// obs is the tool's observability context, set first thing in main.
var obs *cliutil.Obs
