// Command glprof runs the trace-level memory analyses that complement
// cache simulation: per-function/per-variable profiles, reuse-distance
// histograms with miss-ratio curves, and windowed miss-rate timelines.
//
// Usage:
//
//	glprof trace.out
//	glprof -reuse -timeline -window 512 trace.out
//	gltrace -w matmul | glprof -reuse -
package main

import (
	"flag"
	"fmt"
	"os"

	"tracedst/internal/analysis"
	"tracedst/internal/cliutil"
	"tracedst/internal/profile"
	"tracedst/internal/trace"
)

func main() {
	fs := flag.NewFlagSet("glprof", flag.ExitOnError)
	l1 := cliutil.NewCacheFlags(fs, "l1", "32k", 32, 1)
	reuse := fs.Bool("reuse", false, "print the reuse-distance histogram and miss-ratio curve")
	timeline := fs.Bool("timeline", false, "print the windowed miss-rate timeline")
	window := fs.Int("window", 256, "timeline window size in records")
	block := fs.Int64("bsize", 32, "block size for reuse-distance profiling")
	tf := cliutil.NewTraceFlags(fs, "glprof")
	of := cliutil.NewObsFlags(fs, "glprof")
	of.AddProfileFlags(fs)
	_ = fs.Parse(os.Args[1:])

	var err error
	obs, err = of.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "glprof:", err)
		os.Exit(2)
	}
	if fs.NArg() != 1 {
		obs.Log.Error("need exactly one trace file argument (- for stdin)")
		obs.Exit(2)
	}
	// The base profile folds record-by-record, so without -reuse/-timeline
	// (which genuinely need the whole trace for distance/window analysis)
	// the trace streams through in constant memory.
	var recs []trace.Record
	materialize := *reuse || *timeline
	sp := obs.Reg.StartSpan("glprof/profile")
	pr := profile.NewProfiler()
	_, err = cliutil.StreamTrace(fs.Arg(0), tf.Options(), func(batch []trace.Record) error {
		pr.AddBatch(batch)
		if materialize {
			recs = append(recs, batch...)
		}
		return nil
	})
	if err != nil {
		obs.Fatal(err)
	}
	fmt.Print(pr.Finish().Report())
	sp.End()

	if *reuse {
		r := analysis.ReuseDistances(recs, *block)
		fmt.Println()
		fmt.Print(r.Histogram())
		caps := []int64{8, 16, 32, 64, 128, 256, 512, 1024}
		fmt.Println("miss-ratio curve (fully-associative LRU):")
		for _, c := range caps {
			fmt.Printf("  %6d blocks (%7d B): %6.2f%%\n", c, c**block, 100*r.MissRatio(c))
		}
	}

	if *timeline {
		cfg, err := l1.Build()
		if err != nil {
			obs.Fatal(err)
		}
		tl, err := analysis.MissTimeline(recs, cfg, *window)
		if err != nil {
			obs.Fatal(err)
		}
		fmt.Println()
		fmt.Printf("miss-rate timeline (%d-record windows on %s/%d/%d-way):\n",
			tl.Window, byteSize(cfg.Size), cfg.BlockSize, cfg.Assoc)
		fmt.Printf("  [%s]\n", tl.Sparkline())
		if peak, ok := tl.PeakWindow(); ok {
			fmt.Printf("  peak window: records %d.. with %.1f%% misses\n",
				peak.StartRecord, 100*peak.Ratio())
		}
	}
	obs.Close()
}

func byteSize(n int64) string {
	if n%1024 == 0 {
		return fmt.Sprintf("%dk", n/1024)
	}
	return fmt.Sprint(n)
}

// obs is the tool's observability context, set first thing in main.
var obs *cliutil.Obs
