// Command glcheck validates Gleipnir trace files before they are fed to
// the simulator or the transformation engine: it decodes every line,
// collecting parse failures instead of stopping at the first, and checks
// header sanity, address-region plausibility, thread-introduction order
// and per-symbol consistency.
//
// Usage:
//
//	glcheck trace.out [more.out ...]
//	gltrace -w matmul | glcheck -
//	glcheck -q -max-line-bytes 65536 trace.out
//
// Exit status: 0 when every trace passes (warnings allowed), 1 when any
// trace has error-severity findings, 2 on usage or I/O problems.
package main

import (
	"flag"
	"fmt"
	"os"

	"tracedst/internal/cliutil"
	"tracedst/internal/trace"
)

func main() {
	fs := flag.NewFlagSet("glcheck", flag.ExitOnError)
	quiet := fs.Bool("q", false, "print only failing traces")
	werror := fs.Bool("werror", false, "treat warnings as errors")
	maxDiags := fs.Int("max-diags", 100, "findings to keep per trace (counters keep counting)")
	maxLine := fs.Int("max-line-bytes", 0, "maximum trace line length in bytes (0 = 1 MiB default)")
	noRegions := fs.Bool("no-region-checks", false, "skip memmodel address-region checks (traces from real binaries)")
	of := cliutil.NewObsFlags(fs, "glcheck")
	of.AddProfileFlags(fs)
	_ = fs.Parse(os.Args[1:])

	obs, err := of.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "glcheck:", err)
		os.Exit(2)
	}
	if fs.NArg() == 0 {
		obs.Log.Error("usage: glcheck TRACE [TRACE ...] (- for stdin)")
		obs.Exit(2)
	}
	exit := 0
	for _, path := range fs.Args() {
		sp := obs.Reg.StartSpan("glcheck/validate")
		rep, err := checkOne(path, trace.ValidateOptions{
			MaxDiags:         *maxDiags,
			MaxLineBytes:     *maxLine,
			SkipRegionChecks: *noRegions,
		})
		sp.End()
		if err != nil {
			obs.Log.Error("validate failed", "path", path, "err", err.Error())
			exit = 2
			continue
		}
		failed := !rep.OK() || (*werror && rep.Warnings() > 0)
		if failed && exit == 0 {
			exit = 1
		}
		if failed || !*quiet {
			fmt.Printf("%s: %s", path, rep.Summary())
		}
	}
	obs.Exit(exit)
}

func checkOne(path string, opts trace.ValidateOptions) (*trace.Report, error) {
	in, err := cliutil.OpenTrace(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	return trace.Validate(in, opts)
}
