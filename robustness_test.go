// End-to-end robustness tests for the fault-tolerant ingestion layer: the
// fault-injection harness corrupts real workload traces and drives both
// decoder modes, the validator, and the glcheck binary, proving the
// acceptance criteria of the ingestion subsystem:
//
//   - strict mode fails with a line-numbered error on every corruption class
//   - lenient mode skips within MaxBadLines, reporting each skip, and for
//     lossless corruption classes produces simulation results identical to
//     the clean trace
//   - glcheck exits non-zero on every seeded corruption and zero on every
//     shipped workload trace
package tracedst_test

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"tracedst/internal/cache"
	"tracedst/internal/dinero"
	"tracedst/internal/faultinject"
	"tracedst/internal/trace"
	"tracedst/internal/tracer"
	"tracedst/internal/workloads"
)

// cleanWorkloadTrace renders one built-in workload's trace as text.
func cleanWorkloadTrace(t *testing.T, name string) string {
	t.Helper()
	w, ok := workloads.Named[name]
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	res, err := tracer.Run(w.Source, w.Defines, tracer.Options{PID: 4242})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return trace.Format(res.Header, res.Records)
}

func TestStrictModeFailsEveryCorruptionClass(t *testing.T) {
	clean := cleanWorkloadTrace(t, "listing1")
	for _, c := range faultinject.Classes() {
		corrupted := c.Apply(clean, 1)
		_, _, err := trace.ParseAll(corrupted)
		if err == nil {
			t.Errorf("%s: strict decode accepted corrupted trace", c.Name)
			continue
		}
		if !strings.Contains(err.Error(), "line ") {
			t.Errorf("%s: error lacks line number: %v", c.Name, err)
		}
	}
}

func TestLenientModeSkipsAndReports(t *testing.T) {
	clean := cleanWorkloadTrace(t, "listing1")
	_, cleanRecs, err := trace.ParseAll(clean)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range faultinject.Classes() {
		if !c.Skippable {
			continue
		}
		corrupted := c.Apply(clean, 1)
		var reported []int
		rd := trace.NewReaderOptions(strings.NewReader(corrupted), trace.DecodeOptions{
			Mode: trace.Lenient,
			OnError: func(line int, text string, err error) {
				reported = append(reported, line)
			},
		})
		recs, err := rd.ReadAll()
		if err != nil {
			t.Errorf("%s: lenient decode failed: %v", c.Name, err)
			continue
		}
		if len(reported) == 0 || rd.BadLines() != len(reported) {
			t.Errorf("%s: callback fired %d times, BadLines=%d", c.Name, len(reported), rd.BadLines())
		}
		if len(recs) > len(cleanRecs) {
			t.Errorf("%s: recovered %d records from a trace of %d", c.Name, len(recs), len(cleanRecs))
		}
		if c.Lossless {
			if len(recs) != len(cleanRecs) {
				t.Errorf("%s: recovered %d records, want all %d", c.Name, len(recs), len(cleanRecs))
				continue
			}
			for i := range recs {
				if !recs[i].Equal(&cleanRecs[i]) {
					t.Errorf("%s: record %d differs after lenient recovery", c.Name, i)
					break
				}
			}
		}
	}
}

func TestLenientBudgetIsEnforced(t *testing.T) {
	clean := cleanWorkloadTrace(t, "listing1")
	corrupted := faultinject.BitFlipOps(clean, 1, 3)
	decode := func(budget int) error {
		rd := trace.NewReaderOptions(strings.NewReader(corrupted), trace.DecodeOptions{
			Mode:        trace.Lenient,
			MaxBadLines: budget,
		})
		_, err := rd.ReadAll()
		return err
	}
	if err := decode(3); err != nil {
		t.Errorf("budget 3 for 3 bad lines should pass: %v", err)
	}
	err := decode(2)
	if err == nil {
		t.Fatal("budget 2 for 3 bad lines should fail")
	}
	if !strings.Contains(err.Error(), "budget") || !strings.Contains(err.Error(), "line ") {
		t.Errorf("budget error lacks context: %v", err)
	}
	var ble *trace.BadLineError
	if !errors.As(err, &ble) {
		t.Errorf("budget error does not wrap BadLineError: %v", err)
	}
}

// TestLenientSimulationMatchesClean proves the acceptance criterion that
// lenient ingestion of losslessly-corrupted traces yields simulation
// results identical to the clean trace.
func TestLenientSimulationMatchesClean(t *testing.T) {
	clean := cleanWorkloadTrace(t, "trans1-soa")
	_, cleanRecs, err := trace.ParseAll(clean)
	if err != nil {
		t.Fatal(err)
	}
	simReport := func(recs []trace.Record) string {
		sim, err := dinero.New(dinero.Options{L1: cache.Paper32KDirect()})
		if err != nil {
			t.Fatal(err)
		}
		sim.Process(recs)
		return sim.Report()
	}
	want := simReport(cleanRecs)
	for _, c := range faultinject.Classes() {
		if !c.Lossless {
			continue
		}
		corrupted := c.Apply(clean, 7)
		rd := trace.NewReaderOptions(strings.NewReader(corrupted), trace.DecodeOptions{Mode: trace.Lenient})
		recs, err := rd.ReadAll()
		if err != nil {
			t.Errorf("%s: lenient decode failed: %v", c.Name, err)
			continue
		}
		if got := simReport(recs); got != want {
			t.Errorf("%s: simulation results differ from clean trace", c.Name)
		}
	}
}

// TestValidatorPassesAllShippedWorkloads: every built-in workload trace
// must validate with zero errors and zero warnings.
func TestValidatorPassesAllShippedWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("traces every workload")
	}
	for name, w := range workloads.Named {
		res, err := tracer.Run(w.Source, w.Defines, tracer.Options{PID: 4242})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		src := trace.Format(res.Header, res.Records)
		rep, err := trace.Validate(strings.NewReader(src), trace.ValidateOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !rep.OK() || rep.Warnings() > 0 {
			t.Errorf("%s: %s", name, rep.Summary())
		}
		if rep.Records != len(res.Records) {
			t.Errorf("%s: validated %d records, want %d", name, rep.Records, len(res.Records))
		}
	}
}

func TestValidatorFlagsEveryCorruptionClass(t *testing.T) {
	clean := cleanWorkloadTrace(t, "listing1")
	for _, c := range faultinject.Classes() {
		rep, err := trace.Validate(strings.NewReader(c.Apply(clean, 1)), trace.ValidateOptions{})
		if err != nil {
			t.Errorf("%s: validator aborted: %v", c.Name, err)
			continue
		}
		if rep.OK() {
			t.Errorf("%s: validator passed a corrupted trace:\n%s", c.Name, rep.Summary())
		}
	}
}

// runGlcheck executes the glcheck binary and returns its exit code.
func runGlcheck(t *testing.T, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(filepath.Join(buildTools(t), "glcheck"), args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("glcheck %v: %v", args, err)
	}
	return ee.ExitCode(), string(out)
}

func TestGlcheckCLIT1(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	dir := t.TempDir()
	clean := cleanWorkloadTrace(t, "listing1")
	cleanPath := filepath.Join(dir, "clean.out")
	if err := os.WriteFile(cleanPath, []byte(clean), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out := runGlcheck(t, cleanPath); code != 0 {
		t.Errorf("clean trace: exit %d\n%s", code, out)
	}
	for _, c := range faultinject.Classes() {
		p := filepath.Join(dir, c.Name+".out")
		if err := os.WriteFile(p, []byte(c.Apply(clean, 1)), 0o644); err != nil {
			t.Fatal(err)
		}
		code, out := runGlcheck(t, p)
		if code != 1 {
			t.Errorf("%s: exit %d, want 1\n%s", c.Name, code, out)
		}
		if !strings.Contains(out, "FAIL") {
			t.Errorf("%s: output lacks FAIL marker:\n%s", c.Name, out)
		}
	}
	// Missing file is an I/O problem: exit 2.
	if code, _ := runGlcheck(t, filepath.Join(dir, "nope.out")); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
}

// TestLenientCLIPipelineT1 drives the strict/lenient flags through the
// real dinero binary: strict ingestion of a garbage-interleaved trace must
// fail, lenient ingestion must succeed and report the same totals as the
// clean trace.
func TestLenientCLIPipelineT1(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	dir := t.TempDir()
	clean := cleanWorkloadTrace(t, "trans1-soa")
	corrupted := faultinject.InterleaveGarbage(clean, 3, 5)
	cleanPath := filepath.Join(dir, "clean.out")
	badPath := filepath.Join(dir, "bad.out")
	if err := os.WriteFile(cleanPath, []byte(clean), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(badPath, []byte(corrupted), 0o644); err != nil {
		t.Fatal(err)
	}

	bin := filepath.Join(buildTools(t), "dinero")
	strict := exec.Command(bin, badPath)
	if out, err := strict.CombinedOutput(); err == nil {
		t.Errorf("strict dinero accepted corrupted trace:\n%s", out)
	} else if !strings.Contains(string(out), "line ") {
		t.Errorf("strict dinero error lacks line number:\n%s", out)
	}

	want := runTool(t, "dinero", cleanPath)
	var stderr strings.Builder
	lenient := exec.Command(bin, "-lenient", badPath)
	lenient.Stderr = &stderr
	got, err := lenient.Output()
	if err != nil {
		t.Fatalf("lenient dinero failed: %v\n%s", err, stderr.String())
	}
	if string(got) != want {
		t.Error("lenient simulation of garbage-interleaved trace differs from clean run")
	}
	if !strings.Contains(stderr.String(), "skipping line") {
		t.Errorf("lenient dinero did not report skips:\n%s", stderr.String())
	}
}
