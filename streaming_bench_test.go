// Benchmark for the streaming simulate path against the classic
// decode-then-simulate pipeline on the matmul workload trace. Both modes
// run inside each iteration, alternating, so scheduler noise and GC phase
// hit them equally; each mode's cost comes out as its own metric and CI
// holds the streaming path's overhead with tools/benchguard. Run with:
//
//	go test . -run xxx -bench StreamingSimulate -benchmem
package tracedst_test

import (
	"bytes"
	"testing"
	"time"

	"tracedst/internal/dinero"
	"tracedst/internal/trace"
)

// BenchmarkStreamingSimulate: "materialized" is ReadAll into one record
// slice then Process; "streaming" is ProcessSource over a batch iterator
// that never holds more than one block of records. The reports must stay
// byte-identical; the interesting numbers are streaming_ns/op (CI bounds
// it within 10% of materialized_ns/op) and the allocation gap visible
// under -benchmem.
func BenchmarkStreamingSimulate(b *testing.B) {
	f := loadCodec(b)
	cfg := goldenConfigs[2] // rr-32k-64w, the paper geometry
	b.SetBytes(int64(len(f.binary)))
	b.ReportAllocs()
	var matNS, strNS time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		rd := trace.NewBinaryReader(bytes.NewReader(f.binary))
		recs, err := rd.ReadAll()
		if err != nil {
			b.Fatal(err)
		}
		mat, err := dinero.New(dinero.Options{L1: cfg})
		if err != nil {
			b.Fatal(err)
		}
		mat.Process(recs)
		matRep := mat.Report()
		matNS += time.Since(t0)

		t0 = time.Now()
		src, _, err := trace.OpenSource(bytes.NewReader(f.binary), trace.DecodeOptions{}, 0)
		if err != nil {
			b.Fatal(err)
		}
		sim, err := dinero.New(dinero.Options{L1: cfg})
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.ProcessSource(src); err != nil {
			b.Fatal(err)
		}
		strRep := sim.Report()
		strNS += time.Since(t0)

		if strRep != matRep {
			b.Fatal("streaming report diverges from materialized report")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(matNS)/float64(b.N), "materialized_ns/op")
	b.ReportMetric(float64(strNS)/float64(b.N), "streaming_ns/op")
	b.ReportMetric(2*float64(len(f.recs))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkShardedSimulate measures the indexed sharded path end to end
// (footer lookup, per-shard block-range decode, simulate, merge) against
// the same serial streaming run. On a single-CPU host the two are
// expected to tie; on multi-core hosts the shards decode and simulate
// concurrently.
func BenchmarkShardedSimulate(b *testing.B) {
	f := loadCodec(b)
	data := encodeIndexedTrace(b, f.recs, 0)
	tr, err := trace.NewIndexedBytes(data)
	if err != nil {
		b.Fatal(err)
	}
	cfg := goldenConfigs[2]
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	var serialNS, shardNS time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		src, _, err := trace.OpenSource(bytes.NewReader(data), trace.DecodeOptions{}, 0)
		if err != nil {
			b.Fatal(err)
		}
		sim, err := dinero.New(dinero.Options{L1: cfg})
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.ProcessSource(src); err != nil {
			b.Fatal(err)
		}
		serialNS += time.Since(t0)

		t0 = time.Now()
		res, err := dinero.SimulateSharded(tr, dinero.Options{L1: cfg}, 4, trace.DecodeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Sim.Records() != int64(len(f.recs)) {
			b.Fatalf("sharded run simulated %d records, want %d", res.Sim.Records(), len(f.recs))
		}
		shardNS += time.Since(t0)
	}
	b.StopTimer()
	b.ReportMetric(float64(serialNS)/float64(b.N), "serial_ns/op")
	b.ReportMetric(float64(shardNS)/float64(b.N), "sharded4_ns/op")
	b.ReportMetric(2*float64(len(f.recs))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}
