// Benchmarks for the sharded multi-configuration engine and the
// simulation result cache. BenchmarkShardedMultiSim runs the identical
// full-attribution multi-config workload at 1/2/4/8 shards inside each
// iteration, so every shard count sees the same scheduler and GC phase;
// each count's wall time comes out as its own metric and CI holds the
// 4-shard speedup with tools/benchguard (skipped on single-CPU hosts,
// where no speedup is possible). Run with:
//
//	go test . -run xxx -bench ShardedMultiSim -benchtime 10x
//	go test . -run xxx -bench SimCacheHitVsMiss -benchtime 20x
package tracedst_test

import (
	"fmt"
	"testing"
	"time"

	"tracedst/internal/cache"
	"tracedst/internal/dinero"
	"tracedst/internal/simcache"
	"tracedst/internal/telemetry"
	"tracedst/internal/trace"
)

// BenchmarkShardedMultiSim: the 1/2/4/8-shard scaling curve of
// full-attribution MultiSimSharded over the indexed matmul trace, every
// golden config at once. shards1_ns/op is the single-goroutine baseline;
// CI requires shards4_ns/op to be at least 1.8× faster on multi-core
// runners.
func BenchmarkShardedMultiSim(b *testing.B) {
	f := loadCodec(b)
	data := encodeIndexedTrace(b, f.recs, 0)
	tr, err := trace.NewIndexedBytes(data)
	if err != nil {
		b.Fatal(err)
	}
	counts := []int{1, 2, 4, 8}
	ns := make([]time.Duration, len(counts))
	b.SetBytes(int64(len(data)) * int64(len(counts)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for ci, shards := range counts {
			t0 := time.Now()
			res, err := dinero.MultiSimSharded(tr, dinero.MultiOptions{Configs: goldenConfigs}, shards, trace.DecodeOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if res.Sim.Records() != int64(len(f.recs)) {
				b.Fatalf("%d shards simulated %d records, want %d", shards, res.Sim.Records(), len(f.recs))
			}
			ns[ci] += time.Since(t0)
		}
	}
	b.StopTimer()
	for ci, shards := range counts {
		b.ReportMetric(float64(ns[ci])/float64(b.N), fmt.Sprintf("shards%d_ns/op", shards))
	}
	b.ReportMetric(float64(len(f.recs))*float64(len(counts))*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkSimCacheHitVsMiss prices the result cache: the miss path is a
// full multi-config simulation plus the store, the hit path is one
// content-hash plus one lookup returning the finished report.
func BenchmarkSimCacheHitVsMiss(b *testing.B) {
	f := loadCodec(b)
	sc, err := simcache.Open(b.TempDir(), telemetry.NewRegistry())
	if err != nil {
		b.Fatal(err)
	}
	cfg := goldenConfigs[2]
	mkKey := func(engine int) simcache.Key {
		return simcache.Key{
			Trace:  simcache.HashRecords(f.recs),
			Config: simcache.ConfigSig(cfg),
			Engine: engine,
		}
	}
	// Warm one entry for the hit path; the report stays the oracle.
	warm, err := dinero.NewMulti(dinero.MultiOptions{Configs: []cache.Config{cfg}})
	if err != nil {
		b.Fatal(err)
	}
	warm.Process(f.recs)
	want := warm.Report(0)
	if err := sc.Put(mkKey(simcache.EngineVersion), simcache.Entry{Records: warm.Records(), Report: want}); err != nil {
		b.Fatal(err)
	}
	var missNS, hitNS time.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Miss: hash, lookup (empty — each iteration uses a never-stored
		// engine version), simulate, render, store.
		t0 := time.Now()
		key := mkKey(simcache.EngineVersion + 1 + i)
		if _, ok, err := sc.Get(key); err != nil || ok {
			b.Fatalf("cold lookup: ok=%v err=%v", ok, err)
		}
		ms, err := dinero.NewMulti(dinero.MultiOptions{Configs: []cache.Config{cfg}})
		if err != nil {
			b.Fatal(err)
		}
		ms.Process(f.recs)
		rep := ms.Report(0)
		if err := sc.Put(key, simcache.Entry{Records: ms.Records(), Report: rep}); err != nil {
			b.Fatal(err)
		}
		missNS += time.Since(t0)

		// Hit: hash and lookup only.
		t0 = time.Now()
		e, ok, err := sc.Get(mkKey(simcache.EngineVersion))
		if err != nil || !ok {
			b.Fatalf("warm lookup: ok=%v err=%v", ok, err)
		}
		hitNS += time.Since(t0)
		if e.Report != want || rep != want {
			b.Fatal("cached report diverges")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(missNS)/float64(b.N), "miss_simulate_ns/op")
	b.ReportMetric(float64(hitNS)/float64(b.N), "hit_ns/op")
}
