// Benchmarks for the trace codec layer: text and binary decode/encode
// throughput on the matmul workload trace. Run with:
//
//	go test . -run xxx -bench 'Decode|Encode' -benchmem
package tracedst_test

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"tracedst/internal/trace"
)

// codecFixture renders the shared matmul trace (load(b).big) once per
// container format.
type codecFixture struct {
	recs   []trace.Record
	text   string
	binary []byte
}

var codecFix codecFixture

func loadCodec(b *testing.B) *codecFixture {
	b.Helper()
	f := load(b)
	if codecFix.text == "" {
		codecFix.recs = f.big
		codecFix.text = trace.Format(trace.Header{PID: 1}, f.big)
		var buf bytes.Buffer
		bw := trace.NewBinaryWriter(&buf)
		if err := bw.WriteHeader(trace.Header{PID: 1}); err != nil {
			b.Fatal(err)
		}
		for i := range f.big {
			if err := bw.Write(&f.big[i]); err != nil {
				b.Fatal(err)
			}
		}
		if err := bw.Flush(); err != nil {
			b.Fatal(err)
		}
		codecFix.binary = buf.Bytes()
	}
	return &codecFix
}

func reportRecords(b *testing.B, perIter int) {
	b.ReportMetric(float64(perIter*b.N)/b.Elapsed().Seconds(), "records/s")
}

func BenchmarkDecodeText(b *testing.B) {
	f := loadCodec(b)
	b.SetBytes(int64(len(f.text)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd := trace.NewReader(strings.NewReader(f.text))
		recs, err := rd.ReadAll()
		if err != nil || len(recs) != len(f.recs) {
			b.Fatalf("decoded %d records, err %v", len(recs), err)
		}
	}
	reportRecords(b, len(f.recs))
}

func BenchmarkEncodeText(b *testing.B) {
	f := loadCodec(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wr := trace.NewWriter(io.Discard)
		for j := range f.recs {
			if err := wr.Write(&f.recs[j]); err != nil {
				b.Fatal(err)
			}
		}
		if err := wr.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	reportRecords(b, len(f.recs))
}

func BenchmarkDecodeBinary(b *testing.B) {
	f := loadCodec(b)
	b.SetBytes(int64(len(f.binary)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd := trace.NewBinaryReader(bytes.NewReader(f.binary))
		recs, err := rd.ReadAll()
		if err != nil || len(recs) != len(f.recs) {
			b.Fatalf("decoded %d records, err %v", len(recs), err)
		}
	}
	reportRecords(b, len(f.recs))
}

func BenchmarkEncodeBinary(b *testing.B) {
	f := loadCodec(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wr := trace.NewBinaryWriter(io.Discard)
		for j := range f.recs {
			if err := wr.Write(&f.recs[j]); err != nil {
				b.Fatal(err)
			}
		}
		if err := wr.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	reportRecords(b, len(f.recs))
}

func BenchmarkDecodeParallelText(b *testing.B) {
	f := loadCodec(b)
	data := []byte(f.text)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, recs, err := trace.DecodeBytes(data, trace.DecodeOptions{}, 0)
		if err != nil || len(recs) != len(f.recs) {
			b.Fatalf("decoded %d records, err %v", len(recs), err)
		}
	}
	reportRecords(b, len(f.recs))
}

func BenchmarkDecodeParallelBinary(b *testing.B) {
	f := loadCodec(b)
	b.SetBytes(int64(len(f.binary)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, recs, err := trace.DecodeBytes(f.binary, trace.DecodeOptions{}, 0)
		if err != nil || len(recs) != len(f.recs) {
			b.Fatalf("decoded %d records, err %v", len(recs), err)
		}
	}
	reportRecords(b, len(f.recs))
}
