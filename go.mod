module tracedst

go 1.22
