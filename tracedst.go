// Package tracedst is the public facade of the trace-driven data-structure
// transformation toolkit — a Go implementation of "Trace Driven Data
// Structure Transformations" (Janjusic, Kavi, Kartsaklis, 2012).
//
// The pipeline has four stages, each usable on its own:
//
//  1. Trace executes a miniC program and records every annotated memory
//     access (the Gleipnir role).
//  2. ParseRule reads a transformation rule (the paper's Listing 5/8/11
//     format) and NewEngine applies it to a trace, producing the trace the
//     program would emit under the alternative layout.
//  3. Simulate replays a trace on a configurable cache and attributes hits
//     and misses to functions and variables (the modified-DineroIV role).
//  4. The analysis helpers (per-set plots, reuse distances, diffs) turn
//     results into the paper's figures.
//
// Minimal end-to-end use:
//
//	res, _  := tracedst.Trace(src, map[string]string{"LEN": "16"}, tracedst.TraceOptions{})
//	rule, _ := tracedst.ParseRule(ruleText)
//	eng, _  := tracedst.NewEngine(tracedst.EngineOptions{}, rule)
//	out, _  := eng.TransformAll(res.Records)
//	sim, _  := tracedst.Simulate(out, tracedst.Paper32KDirect())
//	fmt.Print(sim.Report())
package tracedst

import (
	"tracedst/internal/analysis"
	"tracedst/internal/cache"
	"tracedst/internal/dinero"
	"tracedst/internal/profile"
	"tracedst/internal/rules"
	"tracedst/internal/trace"
	"tracedst/internal/tracediff"
	"tracedst/internal/tracer"
	"tracedst/internal/xform"
)

// Re-exported core types. Each alias is the canonical type; see the
// underlying package for full documentation.
type (
	// Record is one Gleipnir trace line.
	Record = trace.Record
	// Header is the trace-file preamble.
	Header = trace.Header
	// TraceOptions configure trace collection.
	TraceOptions = tracer.Options
	// TraceResult bundles a collected trace.
	TraceResult = tracer.Result
	// Rule is a parsed transformation rule.
	Rule = rules.Rule
	// EngineOptions tune the transformation engine.
	EngineOptions = xform.Options
	// Engine applies rules to record streams.
	Engine = xform.Engine
	// CacheConfig describes one cache level.
	CacheConfig = cache.Config
	// SimOptions configure a cache simulation.
	SimOptions = dinero.Options
	// Simulator replays traces against a cache hierarchy.
	Simulator = dinero.Simulator
	// Plot is a per-set histogram figure.
	Plot = analysis.Plot
	// Diff aligns an original trace with a transformed one.
	Diff = tracediff.Diff
	// Profile summarises a trace's memory behaviour.
	Profile = profile.Profile
)

// Trace parses and executes a miniC program, collecting its annotated
// memory trace. defines are -D style macro definitions.
func Trace(source string, defines map[string]string, opts TraceOptions) (*TraceResult, error) {
	return tracer.Run(source, defines, opts)
}

// ParseRule reads one transformation rule in the paper's rule-file format.
func ParseRule(src string) (Rule, error) { return rules.Parse(src) }

// NewEngine builds a transformation engine over the given rules.
func NewEngine(opts EngineOptions, rs ...Rule) (*Engine, error) {
	return xform.New(opts, rs...)
}

// Simulate replays records on a single-level cache and returns the
// finished simulator (use Report, Vars, Conflicts, … on it).
func Simulate(records []Record, cfg CacheConfig) (*Simulator, error) {
	sim, err := dinero.New(dinero.Options{L1: cfg})
	if err != nil {
		return nil, err
	}
	sim.Process(records)
	return sim, nil
}

// SimulateWith replays records with full simulation options (second level,
// physical address translation, …).
func SimulateWith(records []Record, opts SimOptions) (*Simulator, error) {
	sim, err := dinero.New(opts)
	if err != nil {
		return nil, err
	}
	sim.Process(records)
	return sim, nil
}

// PerSetPlot builds the per-set histogram of a finished simulation.
func PerSetPlot(title string, sim *Simulator) *Plot {
	return analysis.FromSimulator(title, sim, false)
}

// DiffTraces aligns an original trace with its transformed counterpart.
func DiffTraces(original, transformed []Record) *Diff {
	return tracediff.New(original, transformed)
}

// ProfileTrace summarises per-function/per-variable memory behaviour.
func ProfileTrace(records []Record) *Profile { return profile.New(records) }

// Paper32KDirect is the 32 KB direct-mapped cache of the paper's Figures
// 3-8.
func Paper32KDirect() CacheConfig { return cache.Paper32KDirect() }

// PowerPC440 is the 32 KB 64-way round-robin cache of the paper's
// set-pinning example (Figures 10-11).
func PowerPC440() CacheConfig { return cache.PowerPC440() }

// ParseTrace parses a trace file held in a string.
func ParseTrace(src string) (Header, []Record, error) { return trace.ParseAll(src) }

// FormatTrace renders a trace as Gleipnir text.
func FormatTrace(h Header, records []Record) string { return trace.Format(h, records) }
