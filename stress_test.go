// Scale test: push a million-record trace through the full pipeline —
// tracing, transformation, simulation, reuse analysis — to guard the
// streaming data paths against quadratic blow-ups.
package tracedst_test

import (
	"testing"
	"time"

	"tracedst/internal/analysis"
	"tracedst/internal/cache"
	"tracedst/internal/dinero"
	"tracedst/internal/rules"
	"tracedst/internal/tracer"
	"tracedst/internal/xform"
)

const stressProgram = `
typedef struct { int mX; double mY; } Rec;
Rec lRecs[4096];

int main(void) {
	double acc;
	GLEIPNIR_START_INSTRUMENTATION;
	acc = 0.0;
	for (int pass = 0; pass < 32; pass++) {
		for (int i = 0; i < 4096; i++) {
			lRecs[i].mX = i;
			lRecs[i].mY = acc + i;
		}
	}
	GLEIPNIR_STOP_INSTRUMENTATION;
	return 0;
}
`

const stressRule = `
in:
struct lRecs { int mX; double mY; }[4096];
out:
struct lSplit { int mX[4096]; double mY[4096]; };
`

func TestMillionRecordPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	start := time.Now()
	res, err := tracer.Run(stressProgram, nil, tracer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) < 1_000_000 {
		t.Fatalf("trace has %d records, want ≥ 1M", len(res.Records))
	}
	traceDur := time.Since(start)

	rule, err := rules.Parse(stressRule)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := xform.New(xform.Options{}, rule)
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	transformed, err := eng.TransformAll(res.Records)
	if err != nil {
		t.Fatal(err)
	}
	xformDur := time.Since(start)
	if eng.Stats().Matched != 32*4096*2 {
		t.Errorf("matched = %d", eng.Stats().Matched)
	}

	start = time.Now()
	sim, err := dinero.New(dinero.Options{L1: cache.Paper32KDirect()})
	if err != nil {
		t.Fatal(err)
	}
	sim.Process(transformed)
	simDur := time.Since(start)
	if sim.Records() != int64(len(transformed)) {
		t.Errorf("simulated %d of %d", sim.Records(), len(transformed))
	}

	start = time.Now()
	r := analysis.ReuseDistances(res.Records, 32)
	reuseDur := time.Since(start)
	if r.Accesses == 0 {
		t.Fatal("empty reuse profile")
	}

	t.Logf("records=%d trace=%v xform=%v simulate=%v reuse=%v",
		len(res.Records), traceDur, xformDur, simDur, reuseDur)
	// Generous ceilings: each stage must stay comfortably sub-minute.
	for name, d := range map[string]time.Duration{
		"trace": traceDur, "xform": xformDur, "simulate": simDur, "reuse": reuseDur,
	} {
		if d > 30*time.Second {
			t.Errorf("%s took %v (quadratic regression?)", name, d)
		}
	}
}
